package tuning

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"patchindex/internal/obs"
	sqlpkg "patchindex/internal/sql"
)

// fakeAct is an in-memory Actuator.
type fakeAct struct {
	mu        sync.Mutex
	epoch     uint64
	states    map[string]IndexState // by spec key
	rows      map[string]int64
	bytesEach int64
	createErr error
	creates   []string
	drops     []string
}

func newFakeAct(rows map[string]int64) *fakeAct {
	return &fakeAct{states: map[string]IndexState{}, rows: rows, bytesEach: 1024}
}

func (f *fakeAct) CreateIndex(spec IndexSpec, origin string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.createErr != nil {
		return f.createErr
	}
	f.epoch++
	f.states[spec.key()] = IndexState{IndexSpec: spec, Origin: origin, MemoryBytes: f.bytesEach}
	f.creates = append(f.creates, spec.key()+"/"+origin)
	return nil
}

func (f *fakeAct) DropIndex(table, column string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epoch++
	for k, st := range f.states {
		if st.Table == table && st.Column == column {
			delete(f.states, k)
		}
	}
	f.drops = append(f.drops, table+"."+column)
	return nil
}

func (f *fakeAct) Indexes() []IndexState {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]IndexState, 0, len(f.states))
	for _, st := range f.states {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

func (f *fakeAct) TableRows(table string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rows[table]
}
func (f *fakeAct) Epoch() uint64 { f.mu.Lock(); defer f.mu.Unlock(); return f.epoch }

func (f *fakeAct) has(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.states[key]
	return ok
}

// record folds one statement with the given accesses into the profiler.
func record(p *obs.Profiler, sqlText string, accs ...obs.ColumnAccess) {
	fp, norm := sqlpkg.Fingerprint(sqlText)
	so := p.Begin()
	for _, a := range accs {
		so.AddAccess(a)
	}
	p.Record(so, fp, norm, time.Millisecond, 1, nil, 1)
}

// recordUse folds a statement that exercises (rewrites through) an index, so
// its benefit record stays fresh.
func recordUse(p *obs.Profiler, sqlText, table, column, constraint string) {
	fp, norm := sqlpkg.Fingerprint(sqlText)
	so := p.Begin()
	so.SetRootCost(100)
	so.AddRewrite(obs.RewriteNote{Table: table, Column: column, Constraint: constraint,
		CostBase: 100, CostRewritten: 40})
	p.Record(so, fp, norm, time.Millisecond, 1, nil, 1)
}

func newProfiler() *obs.Profiler {
	p := obs.NewProfiler(0)
	p.SetEnabled(true)
	return p
}

func groupByX(p *obs.Profiler, n int) {
	for i := 0; i < n; i++ {
		record(p, "SELECT COUNT(DISTINCT x) FROM t",
			obs.ColumnAccess{Table: "t", Column: "x", Kind: obs.AccessGroupBy})
	}
}

func sortByY(p *obs.Profiler, n int) {
	for i := 0; i < n; i++ {
		record(p, "SELECT y FROM t ORDER BY y",
			obs.ColumnAccess{Table: "t", Column: "y", Kind: obs.AccessSortKey})
	}
}

func TestScoreColumnsOrderingAndTags(t *testing.T) {
	p := newProfiler()
	groupByX(p, 8)
	sortByY(p, 2)
	rows := func(string) int64 { return 100_000 }
	cands := ScoreColumns(p.Snapshot(), rows)
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %+v", cands)
	}
	if cands[0].Score < cands[1].Score {
		t.Fatalf("candidates not sorted by score: %+v", cands)
	}
	byKey := map[string]Candidate{}
	for _, c := range cands {
		byKey[c.key()] = c
	}
	if c, ok := byKey["t.x[nuc]"]; !ok || c.Accesses != 8 {
		t.Fatalf("missing/odd NUC candidate for t.x: %+v", cands)
	}
	if c, ok := byKey["t.y[nsc]"]; !ok || c.Accesses != 2 {
		t.Fatalf("missing/odd NSC candidate for t.y: %+v", cands)
	}
}

func TestScoreColumnsUnknownTableSkipped(t *testing.T) {
	p := newProfiler()
	groupByX(p, 4)
	cands := ScoreColumns(p.Snapshot(), func(string) int64 { return 0 })
	if len(cands) != 0 {
		t.Fatalf("candidates for unknown table: %+v", cands)
	}
}

// TestOverflowClamp: once the fingerprint table is full, further statements
// fold into the "(other)" bucket; their column traffic must not nominate
// candidates (satellite: overflow traffic can't justify an index for a column
// it never named).
func TestOverflowClamp(t *testing.T) {
	p := obs.NewProfiler(1) // one tracked fingerprint, everything else overflows
	p.SetEnabled(true)
	// Occupy the single slot with a statement naming neither t nor x.
	record(p, "SELECT 1")
	// Flood group-by traffic on t.x through distinct one-off statements: all
	// land in the overflow bucket.
	for i := 0; i < 32; i++ {
		record(p, fmt.Sprintf("SELECT COUNT(DISTINCT x) FROM t WHERE pad%d = 0", i),
			obs.ColumnAccess{Table: "t", Column: "x", Kind: obs.AccessGroupBy})
	}
	snap := p.Snapshot()
	// The traffic is in the column accounting...
	var seen bool
	for _, c := range snap.Columns {
		if c.Table == "t" && c.Column == "x" && c.GroupByCount > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("expected t.x group-by accounting in snapshot")
	}
	// ...but no tracked fingerprint names t.x, so it must not become a
	// candidate.
	if cands := ScoreColumns(snap, func(string) int64 { return 100_000 }); len(cands) != 0 {
		t.Fatalf("overflow traffic produced candidates: %+v", cands)
	}
}

func cfgFast() Config {
	return Config{
		Interval:          time.Hour, // background loop unused in tests
		MaxBuildsPerCycle: 1,
		MaxAutoIndexes:    8,
		MemoryBudgetBytes: 1 << 30,
		MinScore:          1,
		MinTicks:          1,
		WarmupTicks:       1 << 30, // drops disabled unless a test opts in
		DropIdleTicks:     1 << 30,
		DropBenefitFloor:  1e18,
		CooldownCycles:    2,
	}
}

func TestRunCycleColdObservatory(t *testing.T) {
	p := newProfiler() // tick 0
	act := newFakeAct(map[string]int64{"t": 100_000})
	tu := New(cfgFast(), p, act)
	res := tu.RunCycle()
	if res.Skipped == "" || len(res.Events) != 0 {
		t.Fatalf("cold observatory should skip, got %+v", res)
	}
}

func TestCreateAndBuildBudget(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	tu := New(cfgFast(), p, act)
	groupByX(p, 8)
	sortByY(p, 8)
	res := tu.RunCycle()
	var creates int
	for _, ev := range res.Events {
		if ev.Action == "create" {
			creates++
		}
	}
	if creates != 1 {
		t.Fatalf("MaxBuildsPerCycle=1 but %d creates in one cycle: %+v", creates, res.Events)
	}
	// The runner-up is created on the next cycle (traffic continues).
	groupByX(p, 4)
	sortByY(p, 4)
	tu.RunCycle()
	if !act.has("t.x[nuc]") || !act.has("t.y[nsc]") {
		t.Fatalf("expected both indexes after two cycles, have %+v", act.Indexes())
	}
}

func TestMaxAutoIndexesCap(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	cfg := cfgFast()
	cfg.MaxAutoIndexes = 1
	tu := New(cfg, p, act)
	groupByX(p, 8)
	tu.RunCycle() // creates t.x[nuc]
	sortByY(p, 8)
	res := tu.RunCycle()
	var reject *Event
	for i, ev := range res.Events {
		if ev.Action == "reject" {
			reject = &res.Events[i]
		}
	}
	if reject == nil || !strings.Contains(reject.Note, "cap") {
		t.Fatalf("expected cap reject, got %+v", res.Events)
	}
	if act.has("t.y[nsc]") {
		t.Fatalf("index created past MaxAutoIndexes cap")
	}
}

func TestMemoryBudgetReject(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 1_000_000})
	cfg := cfgFast()
	cfg.MemoryBudgetBytes = 16 // far below any estimate
	tu := New(cfg, p, act)
	groupByX(p, 8)
	res := tu.RunCycle()
	var reject *Event
	for i, ev := range res.Events {
		if ev.Action == "reject" {
			reject = &res.Events[i]
		}
	}
	if reject == nil || !strings.Contains(reject.Note, "memory budget") {
		t.Fatalf("expected memory-budget reject, got %+v", res.Events)
	}
	if len(act.Indexes()) != 0 {
		t.Fatalf("index created past memory budget")
	}
}

func TestCreateFailureJournaledAndCoolsDown(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	act.createErr = errors.New("threshold exceeded: exception rate 0.40 > 0.05")
	tu := New(cfgFast(), p, act)
	groupByX(p, 8)
	res := tu.RunCycle()
	var saw bool
	for _, ev := range res.Events {
		if ev.Action == "reject" && ev.Err != "" {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("build failure not journaled as reject: %+v", res.Events)
	}
	// Cooldown: the candidate is not retried on the immediately next cycle.
	act.createErr = nil
	groupByX(p, 8)
	res = tu.RunCycle()
	if len(act.creates) != 0 {
		t.Fatalf("candidate retried during cooldown: %v", act.creates)
	}
	_ = res
}

// TestDropHysteresisNoFlapping drives an oscillating workload and asserts the
// guardrails: a fresh index is never dropped inside its warmup, an idle index
// past warmup is dropped, and a dropped candidate is not re-created during
// its cooldown — so creates don't alternate with drops cycle by cycle.
func TestDropHysteresisNoFlapping(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	cfg := cfgFast()
	cfg.WarmupTicks = 4
	cfg.DropIdleTicks = 4
	cfg.CooldownCycles = 3
	tu := New(cfg, p, act)

	groupByX(p, 8)
	tu.RunCycle()
	if !act.has("t.x[nuc]") {
		t.Fatalf("expected initial create")
	}

	// Still inside warmup (few ticks since creation): no drop even though the
	// workload already shifted.
	sortByY(p, 2)
	tu.RunCycle()
	if !act.has("t.x[nuc]") {
		t.Fatalf("index dropped inside warmup")
	}

	// Push past warmup + idle with y-only traffic: x must be dropped.
	var dropped bool
	for i := 0; i < 6 && !dropped; i++ {
		sortByY(p, 4)
		res := tu.RunCycle()
		for _, ev := range res.Events {
			if ev.Action == "drop" && ev.Column == "x" {
				dropped = true
			}
		}
	}
	if !dropped {
		t.Fatalf("idle index never dropped; journal %+v", tu.Journal())
	}

	// Oscillate back to x immediately: cooldown must block re-creation.
	groupByX(p, 8)
	res := tu.RunCycle()
	for _, ev := range res.Events {
		if ev.Action == "create" && ev.Column == "x" {
			t.Fatalf("index re-created during cooldown (flapping): %+v", res.Events)
		}
	}

	// Over the whole oscillation, x was created at most... once so far; keep
	// oscillating and count: with cooldown 3 cycles, 6 more cycles permit at
	// most 2 more creations.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			groupByX(p, 4)
		} else {
			sortByY(p, 4)
		}
		tu.RunCycle()
	}
	var xCreates int
	for _, c := range act.creates {
		if strings.HasPrefix(c, "t.x[nuc]") {
			xCreates++
		}
	}
	if xCreates > 3 {
		t.Fatalf("flapping: t.x created %d times under oscillation", xCreates)
	}
}

// TestUsedIndexNotDropped: an index whose benefit record stays fresh is kept
// even when its creation is long past.
func TestUsedIndexNotDropped(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	cfg := cfgFast()
	cfg.WarmupTicks = 2
	cfg.DropIdleTicks = 2
	tu := New(cfg, p, act)
	groupByX(p, 8)
	tu.RunCycle()
	for i := 0; i < 8; i++ {
		recordUse(p, "SELECT COUNT(DISTINCT x) FROM t", "t", "x", "nuc")
		tu.RunCycle()
	}
	if !act.has("t.x[nuc]") {
		t.Fatalf("actively used index was dropped; journal %+v", tu.Journal())
	}
}

// TestDeltaScoring: a workload that shifted away stops nominating its old
// columns — scoring runs on per-cycle deltas, not cumulative counters.
func TestDeltaScoring(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	cfg := cfgFast()
	cfg.MinScore = 1e18 // block creations; we only inspect candidates
	tu := New(cfg, p, act)
	groupByX(p, 8)
	res := tu.RunCycle()
	if len(res.Candidates) == 0 || res.Candidates[0].key() != "t.x[nuc]" {
		t.Fatalf("expected t.x[nuc] candidate, got %+v", res.Candidates)
	}
	// No new x traffic this cycle: x's historic counters must not nominate it
	// again.
	sortByY(p, 2)
	res = tu.RunCycle()
	for _, c := range res.Candidates {
		if c.key() == "t.x[nuc]" {
			t.Fatalf("cumulative counters nominated stale column: %+v", res.Candidates)
		}
	}
}

func TestManualIndexNeverDropped(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	// Pre-existing manual index on t.x, plus an auto one the tuner made on the
	// same column would share DROP granularity — simulate by seeding a manual
	// index and running idle cycles.
	manual := IndexSpec{Table: "t", Column: "x", Constraint: "nuc", Kind: "auto", Threshold: 0.1}
	if err := act.CreateIndex(manual, "manual"); err != nil {
		t.Fatal(err)
	}
	cfg := cfgFast()
	cfg.WarmupTicks = 2
	cfg.DropIdleTicks = 2
	tu := New(cfg, p, act)
	for i := 0; i < 6; i++ {
		sortByY(p, 4) // unrelated traffic; x is idle
		tu.RunCycle()
	}
	if !act.has("t.x[nuc]") {
		t.Fatalf("manual index dropped by tuner")
	}
}

func TestRollbackRestoresBaseline(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 100_000})
	manual := IndexSpec{Table: "t", Column: "m", Constraint: "nuc", Kind: "auto", Threshold: 0.1}
	if err := act.CreateIndex(manual, "manual"); err != nil {
		t.Fatal(err)
	}
	tu := New(cfgFast(), p, act)
	groupByX(p, 8)
	tu.RunCycle()
	if !act.has("t.x[nuc]") {
		t.Fatalf("expected auto create before rollback")
	}
	// Baseline index vanishes out-of-band (manual DDL): rollback re-creates it.
	if err := act.DropIndex("t", "m"); err != nil {
		t.Fatal(err)
	}
	if err := tu.Rollback(); err != nil {
		t.Fatal(err)
	}
	states := act.Indexes()
	if len(states) != 1 || states[0].key() != "t.m[nuc]" {
		t.Fatalf("rollback did not restore baseline exactly: %+v", states)
	}
	if st := tu.Status(); st.Rollbacks != 1 {
		t.Fatalf("rollback not counted: %+v", st)
	}
}

func TestStartStopJournaled(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{"t": 1000})
	tu := New(cfgFast(), p, act)
	tu.Start()
	if !tu.Running() {
		t.Fatalf("not running after Start")
	}
	tu.Start() // idempotent
	tu.Stop()
	if tu.Running() {
		t.Fatalf("still running after Stop")
	}
	tu.Stop() // idempotent
	var start, stop bool
	for _, ev := range tu.Journal() {
		switch ev.Action {
		case "start":
			start = true
		case "stop":
			stop = true
		}
	}
	if !start || !stop {
		t.Fatalf("start/stop not journaled: %+v", tu.Journal())
	}
}

func TestJournalBounded(t *testing.T) {
	p := newProfiler()
	act := newFakeAct(map[string]int64{})
	tu := New(cfgFast(), p, act)
	for i := 0; i < journalCap+50; i++ {
		tu.Start()
		tu.Stop()
	}
	j := tu.Journal()
	if len(j) != journalCap {
		t.Fatalf("journal not bounded: %d", len(j))
	}
	if j[len(j)-1].Seq != int64((journalCap+50)*2) {
		t.Fatalf("seq lost on truncation: last=%d", j[len(j)-1].Seq)
	}
}
