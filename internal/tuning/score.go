// Package tuning implements the background self-tuner: it mines the workload
// observatory for PatchIndex candidates, scores them with the planner's
// closed-form shadow savings, creates winners within an explicit budget and
// drops indexes whose decayed benefit no longer pays for their keep. Every
// action is journaled and the whole tuner run can be rolled back to the index
// set that existed when the tuner was created (AIM-style automated index
// management, scaled down to PatchIndexes).
package tuning

import (
	"sort"
	"strings"

	"patchindex/internal/obs"
	"patchindex/internal/plan"
)

// overflowFingerprint is the reserved catch-all fingerprint the profiler
// folds statements into once its table is full. Its aggregate mixes unrelated
// statements, so it must never count as evidence for any specific column.
const overflowFingerprint = "0000000000000000"

// Candidate is one scored PatchIndex proposal.
type Candidate struct {
	Table      string  `json:"table"`
	Column     string  `json:"column"`
	Constraint string  `json:"constraint"` // "nuc" or "nsc"
	Score      float64 `json:"score"`      // estimated cost units saved per cycle window
	Accesses   int64   `json:"accesses"`   // access count backing the score
	Reason     string  `json:"reason"`
}

func (c Candidate) key() string { return c.Table + "." + c.Column + "[" + c.Constraint + "]" }

// ScoreColumns turns a workload snapshot into ranked PatchIndex candidates.
// rows maps a table name to its current row count (return 0 for unknown
// tables; their candidates are skipped).
//
// A column only qualifies when at least one *tracked* statement fingerprint
// names it: the overflow bucket — fingerprint 0, normalized text "(other)" —
// aggregates arbitrary statements once the fingerprint table is full, so its
// traffic is clamped out and cannot justify an index for a column it never
// actually named. Column access accounting itself is exact (it is mined at
// bind time, not from fingerprints), but the support check keeps a
// pathological flood of one-off statements from promoting a column on
// aggregate counts alone.
func ScoreColumns(snap obs.WorkloadSnapshot, rows func(table string) int64) []Candidate {
	supported := func(table, column string) bool {
		for _, st := range snap.Statements {
			if st.Fingerprint == overflowFingerprint || st.SQL == "(other)" {
				continue // satellite clamp: overflow evidence is inadmissible
			}
			if containsWord(st.SQL, table) && containsWord(st.SQL, column) {
				return true
			}
		}
		return false
	}

	var out []Candidate
	for _, col := range snap.Columns {
		n := rows(col.Table)
		if n <= 0 {
			continue
		}
		if !supported(col.Table, col.Column) {
			continue
		}
		if col.GroupByCount > 0 {
			score := float64(col.GroupByCount) * plan.ShadowDistinctSavings(n)
			if score > 0 {
				out = append(out, Candidate{
					Table: col.Table, Column: col.Column, Constraint: "nuc",
					Score: score, Accesses: col.GroupByCount,
					Reason: "distinct/group-by traffic",
				})
			}
		}
		if col.SortKeyCount > 0 || col.JoinKeyCount > 0 {
			score := float64(col.SortKeyCount)*plan.ShadowSortSavings(n) +
				float64(col.JoinKeyCount)*plan.ShadowJoinSavings(n)
			if score > 0 {
				out = append(out, Candidate{
					Table: col.Table, Column: col.Column, Constraint: "nsc",
					Score: score, Accesses: col.SortKeyCount + col.JoinKeyCount,
					Reason: "order-by/join traffic",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].key() < out[j].key()
	})
	return out
}

// containsWord reports whether s contains w delimited by non-identifier
// characters (both are already lowercased by the lexer/normalizer).
func containsWord(s, w string) bool {
	if w == "" {
		return false
	}
	for from := 0; ; {
		i := strings.Index(s[from:], w)
		if i < 0 {
			return false
		}
		i += from
		before := i == 0 || !identByte(s[i-1])
		afterIdx := i + len(w)
		after := afterIdx >= len(s) || !identByte(s[afterIdx])
		if before && after {
			return true
		}
		from = i + 1
	}
}

func identByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
