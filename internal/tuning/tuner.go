package tuning

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"patchindex/internal/obs"
	"patchindex/internal/plan"
)

// IndexSpec identifies one PatchIndex with everything needed to (re)create
// it. Constraint is the benefit-tracker tag: "nuc" or "nsc".
type IndexSpec struct {
	Table      string  `json:"table"`
	Column     string  `json:"column"`
	Constraint string  `json:"constraint"`
	Kind       string  `json:"kind"` // "identifier", "bitmap", "auto"
	Threshold  float64 `json:"threshold"`
	Descending bool    `json:"descending,omitempty"`
	Force      bool    `json:"-"` // build even above threshold (rollback re-creates)
}

func (s IndexSpec) key() string { return s.Table + "." + s.Column + "[" + s.Constraint + "]" }

// colKey identifies the column an index lives on — the unit DROP PATCHINDEX
// operates at (it removes every constraint on the column).
func (s IndexSpec) colKey() string { return s.Table + "." + s.Column }

// IndexState is the actuator's view of one live index.
type IndexState struct {
	IndexSpec
	Origin      string  `json:"origin"` // "manual" or "auto"
	MemoryBytes int64   `json:"memory_bytes"`
	Rate        float64 `json:"rate"`
}

// Actuator performs index DDL on behalf of the tuner. The engine implements
// it; tests substitute fakes. Implementations must be safe for concurrent
// use and perform their own locking — the tuner holds no engine locks.
type Actuator interface {
	// CreateIndex builds and registers the index. origin is recorded on the
	// index ("auto" for tuner creations, the original origin on rollback).
	// A build whose measured exception rate exceeds spec.Threshold fails
	// unless spec.Force is set; the error is journaled, not fatal.
	CreateIndex(spec IndexSpec, origin string) error
	// DropIndex removes every PatchIndex on table.column.
	DropIndex(table, column string) error
	// Indexes lists the current catalog state.
	Indexes() []IndexState
	// TableRows returns the table's current row count (0 when unknown).
	TableRows(table string) int64
	// Epoch returns the catalog schema-mutation counter, used to detect
	// concurrent manual DDL between planning and actuation.
	Epoch() uint64
}

// Config bounds the tuner. Zero values take the defaults below.
type Config struct {
	// Interval is the background cycle period.
	Interval time.Duration
	// MaxBuildsPerCycle caps index creations per cycle (the AIM-style build
	// budget: discovery scans the table, so creations are rationed).
	MaxBuildsPerCycle int
	// MaxAutoIndexes caps concurrently live auto-created indexes.
	MaxAutoIndexes int
	// MemoryBudgetBytes caps the summed patch payload of auto indexes;
	// a candidate whose estimated footprint would exceed it is rejected.
	MemoryBudgetBytes int64
	// MinScore is the least per-cycle score (estimated cost units saved)
	// that justifies a creation.
	MinScore float64
	// MinTicks is the least profiler tick count before the tuner acts at
	// all — no decisions on a cold observatory.
	MinTicks int64
	// WarmupTicks protects a fresh auto index from dropping: it must live
	// at least this many statement ticks.
	WarmupTicks int64
	// DropIdleTicks: an auto index unused for this many ticks (and past
	// warmup) whose decayed benefit is below DropBenefitFloor is dropped.
	DropIdleTicks int64
	// DropBenefitFloor is the decayed cost-saved level below which an idle
	// index no longer pays for its keep.
	DropBenefitFloor float64
	// CooldownCycles blocks re-creating a candidate for this many cycles
	// after it was dropped or rejected, preventing create/drop flapping.
	CooldownCycles int64
}

// Defaults for Config zero values.
const (
	DefaultInterval          = 2 * time.Second
	DefaultMaxBuildsPerCycle = 1
	DefaultMaxAutoIndexes    = 8
	DefaultMemoryBudget      = 64 << 20
	DefaultMinScore          = 10.0
	DefaultMinTicks          = 16
	DefaultWarmupTicks       = 64
	DefaultDropIdleTicks     = 256
	DefaultDropBenefitFloor  = 1e6
	DefaultCooldownCycles    = 4
	journalCap               = 256
)

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.MaxBuildsPerCycle <= 0 {
		c.MaxBuildsPerCycle = DefaultMaxBuildsPerCycle
	}
	if c.MaxAutoIndexes <= 0 {
		c.MaxAutoIndexes = DefaultMaxAutoIndexes
	}
	if c.MemoryBudgetBytes <= 0 {
		c.MemoryBudgetBytes = DefaultMemoryBudget
	}
	if c.MinScore <= 0 {
		c.MinScore = DefaultMinScore
	}
	if c.MinTicks <= 0 {
		c.MinTicks = DefaultMinTicks
	}
	if c.WarmupTicks <= 0 {
		c.WarmupTicks = DefaultWarmupTicks
	}
	if c.DropIdleTicks <= 0 {
		c.DropIdleTicks = DefaultDropIdleTicks
	}
	if c.DropBenefitFloor <= 0 {
		c.DropBenefitFloor = DefaultDropBenefitFloor
	}
	if c.CooldownCycles <= 0 {
		c.CooldownCycles = DefaultCooldownCycles
	}
	return c
}

// Event is one journaled tuner action. The journal is a bounded ring; Seq is
// monotonically increasing so truncation is visible.
type Event struct {
	Seq        int64   `json:"seq"`
	Cycle      int64   `json:"cycle"`
	Tick       int64   `json:"tick"`
	Action     string  `json:"action"` // create|drop|rebuild|reject|rollback|start|stop
	Table      string  `json:"table,omitempty"`
	Column     string  `json:"column,omitempty"`
	Constraint string  `json:"constraint,omitempty"`
	Score      float64 `json:"score,omitempty"`
	Note       string  `json:"note,omitempty"`
	Err        string  `json:"err,omitempty"`
}

// Status is the /tuner and SHOW TUNER document.
type Status struct {
	Running           bool        `json:"running"`
	IntervalMillis    int64       `json:"interval_millis"`
	Cycles            int64       `json:"cycles"`
	Creates           int64       `json:"creates"`
	Drops             int64       `json:"drops"`
	Rebuilds          int64       `json:"rebuilds"`
	Rejects           int64       `json:"rejects"`
	Rollbacks         int64       `json:"rollbacks"`
	Tick              int64       `json:"tick"`
	Epoch             uint64      `json:"epoch"`
	AutoLive          int         `json:"auto_live"`
	AutoMemoryBytes   int64       `json:"auto_memory_bytes"`
	MemoryBudgetBytes int64       `json:"memory_budget_bytes"`
	MaxBuildsPerCycle int         `json:"max_builds_per_cycle"`
	MaxAutoIndexes    int         `json:"max_auto_indexes"`
	MinScore          float64     `json:"min_score"`
	Baseline          []IndexSpec `json:"baseline"`
	LastCandidates    []Candidate `json:"last_candidates,omitempty"`
	Journal           []Event     `json:"journal,omitempty"`
}

// CycleResult summarizes one tuning cycle.
type CycleResult struct {
	Cycle      int64       `json:"cycle"`
	Tick       int64       `json:"tick"`
	Candidates []Candidate `json:"candidates,omitempty"`
	Events     []Event     `json:"events,omitempty"`
	Skipped    string      `json:"skipped,omitempty"` // why the cycle did nothing
}

// Tuner is the background self-tuner. Create with New, drive with Start/Stop
// for the background loop or RunCycle for a synchronous step (ALTER TUNER
// NOW, tests, benchmarks).
type Tuner struct {
	cfg  Config
	prof *obs.Profiler
	act  Actuator

	mu       sync.Mutex
	running  bool
	stopCh   chan struct{}
	wg       sync.WaitGroup
	cycle    int64
	seq      int64
	creates  int64
	drops    int64
	rejects  int64
	rollback int64
	// baseline is the index set ROLLBACK restores. It is captured lazily at
	// the tuner's first action (Start, RunCycle or Rollback), not at engine
	// construction, so manual DDL issued before the tuner ever ran counts as
	// pre-tuner state.
	baseline    []IndexSpec
	baselineSet bool
	// createdTick remembers when each auto index (by index key) was built,
	// anchoring warmup.
	createdTick map[string]int64
	// cooldownUntil blocks a candidate key until the named cycle.
	cooldownUntil map[string]int64
	// prevCols is the previous cycle's column accounting; scoring runs on
	// per-cycle deltas so a workload that shifted away stops nominating its
	// old columns (cumulative counters would propose them forever).
	prevCols map[string]obs.ColumnStats
	lastCand []Candidate
	journal  []Event
	// drift queues rebuild candidates reported by the monitor's
	// patch-ratio-drift detector, deduplicated by index key. The next cycle
	// services them ahead of (and regardless of) the MinTicks gate: a
	// drifting index needs repair even when the observatory is cold.
	drift    map[string]DriftReport
	rebuilds int64
	// notify, when set, receives every journaled event (the monitor turns
	// them into info alerts). Called with t.mu held — it must not call back
	// into the tuner.
	notify func(Event)
}

// DriftReport is one monitor finding: an index whose patch ratio crossed
// (or is projected to cross) the representation crossover.
type DriftReport struct {
	Table      string  `json:"table"`
	Column     string  `json:"column"`
	Constraint string  `json:"constraint"` // "nuc" or "nsc"
	Ratio      float64 `json:"ratio"`
	// ProjectedSeconds is the detector's time-to-crossover estimate
	// (0 = already past).
	ProjectedSeconds float64 `json:"projected_seconds"`
}

func (r DriftReport) key() string { return r.Table + "." + r.Column + "[" + r.Constraint + "]" }

// New creates a tuner over the profiler and actuator. The background loop is
// not started; call Start, or RunCycle directly. The rollback baseline is
// captured at the tuner's first action.
func New(cfg Config, prof *obs.Profiler, act Actuator) *Tuner {
	return &Tuner{
		cfg:           cfg.withDefaults(),
		prof:          prof,
		act:           act,
		createdTick:   map[string]int64{},
		cooldownUntil: map[string]int64{},
		prevCols:      map[string]obs.ColumnStats{},
		drift:         map[string]DriftReport{},
	}
}

// SetNotify installs the journal-event callback (see the notify field).
func (t *Tuner) SetNotify(fn func(Event)) {
	t.mu.Lock()
	t.notify = fn
	t.mu.Unlock()
}

// ReportDrift queues an index for rebuild at the next cycle. Duplicate
// reports for the same index coalesce (latest wins), so a firing alert
// re-reported every sample costs one rebuild, not many.
func (t *Tuner) ReportDrift(r DriftReport) {
	t.mu.Lock()
	t.drift[r.key()] = r
	t.mu.Unlock()
}

// ensureBaseline captures the rollback baseline on the tuner's first action.
// Caller holds t.mu.
func (t *Tuner) ensureBaseline() {
	if t.baselineSet {
		return
	}
	t.baselineSet = true
	for _, st := range t.act.Indexes() {
		t.baseline = append(t.baseline, st.IndexSpec)
	}
}

// Config returns the tuner's effective (defaulted) configuration.
func (t *Tuner) Config() Config { return t.cfg }

// Start launches the background loop; no-op if already running.
func (t *Tuner) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return
	}
	t.ensureBaseline()
	t.running = true
	t.stopCh = make(chan struct{})
	t.logEvent(&Event{Action: "start"})
	t.wg.Add(1)
	go t.loop(t.stopCh)
}

// Stop halts the background loop and waits for the in-flight cycle; no-op if
// not running.
func (t *Tuner) Stop() {
	t.mu.Lock()
	if !t.running {
		t.mu.Unlock()
		return
	}
	t.running = false
	close(t.stopCh)
	t.logEvent(&Event{Action: "stop"})
	t.mu.Unlock()
	t.wg.Wait()
}

// Running reports whether the background loop is active.
func (t *Tuner) Running() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.running
}

func (t *Tuner) loop(stop <-chan struct{}) {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			t.RunCycle()
		}
	}
}

// RunCycle executes one synchronous tuning cycle: score candidates from the
// observatory, drop stale auto indexes, create the best affordable
// candidates. Safe to call concurrently with the background loop (cycles are
// serialized) and with foreground DDL (the actuator revalidates).
func (t *Tuner) RunCycle() CycleResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureBaseline()
	t.cycle++
	res := CycleResult{Cycle: t.cycle}

	tick := t.prof.Tick()
	res.Tick = tick

	// Drift rebuilds run ahead of the MinTicks gate: the monitor's signal is
	// the index's own patch ratio, not the observatory, so a cold profiler is
	// no reason to leave a degrading index in place.
	if len(t.drift) > 0 {
		res.Events = append(res.Events, t.rebuildDrifted(tick)...)
	}

	if tick < t.cfg.MinTicks {
		res.Skipped = fmt.Sprintf("observatory cold: tick %d < min %d", tick, t.cfg.MinTicks)
		return res
	}

	snap := t.prof.Snapshot()
	epoch := t.act.Epoch()
	states := t.act.Indexes()

	// Score on per-cycle access deltas so candidates reflect the *current*
	// workload, not all history.
	delta := t.deltaColumns(snap.Columns)
	cands := ScoreColumns(withColumns(snap, delta), t.act.TableRows)
	t.lastCand = cands
	res.Candidates = cands

	events := t.dropStale(tick, states)

	// Refresh state if our own drops (or concurrent DDL) moved the catalog.
	if t.act.Epoch() != epoch {
		states = t.act.Indexes()
	}
	events = append(events, t.createWinners(tick, cands, states)...)

	res.Events = append(res.Events, events...)
	return res
}

// rebuildDrifted services the drift queue: each reported index is dropped
// and re-created from scratch, which re-runs full discovery (minimal patch
// set) where incremental maintenance had accumulated a greedy, inflated
// one. DROP PATCHINDEX removes every constraint on the column, so all of
// the column's indexes are re-created, preserving each one's origin.
// Caller holds t.mu.
func (t *Tuner) rebuildDrifted(tick int64) []Event {
	reports := make([]DriftReport, 0, len(t.drift))
	for _, r := range t.drift {
		reports = append(reports, r)
	}
	t.drift = map[string]DriftReport{}
	sort.Slice(reports, func(i, j int) bool { return reports[i].key() < reports[j].key() })

	states := t.act.Indexes()
	byCol := map[string][]IndexState{}
	for _, st := range states {
		byCol[st.colKey()] = append(byCol[st.colKey()], st)
	}

	var events []Event
	rebuiltCols := map[string]bool{}
	for _, r := range reports {
		colKey := r.Table + "." + r.Column
		if rebuiltCols[colKey] {
			continue
		}
		col := byCol[colKey]
		if len(col) == 0 {
			continue // index vanished since the report (manual drop)
		}
		rebuiltCols[colKey] = true
		ev := Event{Action: "rebuild", Tick: tick, Table: r.Table, Column: r.Column,
			Constraint: r.Constraint,
			Note:       fmt.Sprintf("patch ratio %.5f drifted past crossover", r.Ratio)}
		if err := t.act.DropIndex(r.Table, r.Column); err != nil {
			ev.Err = err.Error()
			t.logEvent(&ev)
			events = append(events, ev)
			continue
		}
		for _, st := range col {
			spec := st.IndexSpec
			spec.Force = true // it existed; rebuild even if the ratio is high
			if err := t.act.CreateIndex(spec, st.Origin); err != nil && ev.Err == "" {
				ev.Err = err.Error()
				continue
			}
			if st.Origin == "auto" {
				t.createdTick[spec.key()] = tick // rebuild restarts warmup
			}
		}
		if ev.Err == "" {
			t.rebuilds++
		}
		t.logEvent(&ev)
		events = append(events, ev)
	}
	return events
}

// withColumns returns snap with its column accounting replaced.
func withColumns(snap obs.WorkloadSnapshot, cols []obs.ColumnStats) obs.WorkloadSnapshot {
	snap.Columns = cols
	return snap
}

// deltaColumns subtracts the previous cycle's access counters and remembers
// the current ones. Caller holds t.mu.
func (t *Tuner) deltaColumns(cols []obs.ColumnStats) []obs.ColumnStats {
	out := make([]obs.ColumnStats, 0, len(cols))
	next := make(map[string]obs.ColumnStats, len(cols))
	for _, c := range cols {
		k := c.Table + "." + c.Column
		next[k] = c
		if p, ok := t.prevCols[k]; ok {
			c.PredicateCount -= p.PredicateCount
			c.SortKeyCount -= p.SortKeyCount
			c.GroupByCount -= p.GroupByCount
			c.JoinKeyCount -= p.JoinKeyCount
		}
		out = append(out, c)
	}
	t.prevCols = next
	return out
}

// dropStale drops auto indexes past warmup that are idle and whose decayed
// benefit fell below the keep floor. DROP PATCHINDEX removes every constraint
// on a column, so a column is only dropped when all its auto indexes are
// stale and no manual index shares it. Caller holds t.mu.
func (t *Tuner) dropStale(tick int64, states []IndexState) []Event {
	type colState struct {
		manual    bool
		auto      []IndexState
		staleAuto int
	}
	byCol := map[string]*colState{}
	for _, st := range states {
		cs := byCol[st.colKey()]
		if cs == nil {
			cs = &colState{}
			byCol[st.colKey()] = cs
		}
		if st.Origin != "auto" {
			cs.manual = true
			continue
		}
		cs.auto = append(cs.auto, st)
		if t.isStale(tick, st) {
			cs.staleAuto++
		}
	}
	var events []Event
	for _, st := range states {
		cs := byCol[st.colKey()]
		if st.Origin != "auto" || cs.manual || cs.staleAuto != len(cs.auto) || cs.staleAuto == 0 {
			continue
		}
		// Drop once per column; mark handled.
		cs.staleAuto = 0
		ev := Event{Action: "drop", Table: st.Table, Column: st.Column, Constraint: st.Constraint}
		if err := t.act.DropIndex(st.Table, st.Column); err != nil {
			ev.Err = err.Error()
		} else {
			t.drops++
			for _, a := range cs.auto {
				delete(t.createdTick, a.key())
				t.cooldownUntil[a.key()] = t.cycle + t.cfg.CooldownCycles
			}
			ev.Note = "idle past warmup, decayed benefit below keep floor"
		}
		t.logEvent(&ev)
		events = append(events, ev)
	}
	return events
}

// isStale reports whether one auto index qualifies for dropping at tick.
// Caller holds t.mu.
func (t *Tuner) isStale(tick int64, st IndexState) bool {
	created, ok := t.createdTick[st.key()]
	if !ok {
		// Unknown creation time (e.g. tuner restarted): treat first sighting
		// as creation so warmup still applies.
		t.createdTick[st.key()] = tick
		return false
	}
	if tick-created < t.cfg.WarmupTicks {
		return false
	}
	b, used := t.prof.Benefit().Lookup(st.Table, st.Column, st.Constraint, tick)
	if !used {
		return true // never used since creation and past warmup
	}
	idle := b.LastUsedTick == 0 || tick-b.LastUsedTick >= t.cfg.DropIdleTicks
	return idle && b.CostSaved < t.cfg.DropBenefitFloor
}

// createWinners builds the best-scoring affordable candidates under the
// cycle, count and memory budgets. Caller holds t.mu.
func (t *Tuner) createWinners(tick int64, cands []Candidate, states []IndexState) []Event {
	existing := map[string]bool{}
	autoLive := 0
	var autoBytes int64
	for _, st := range states {
		existing[st.key()] = true
		if st.Origin == "auto" {
			autoLive++
			autoBytes += st.MemoryBytes
		}
	}
	var events []Event
	builds := 0
	for _, c := range cands {
		if builds >= t.cfg.MaxBuildsPerCycle {
			break
		}
		if c.Score < t.cfg.MinScore || existing[c.key()] {
			continue
		}
		if until, ok := t.cooldownUntil[c.key()]; ok && t.cycle < until {
			continue
		}
		rows := t.act.TableRows(c.Table)
		if rows <= 0 {
			continue
		}
		if autoLive >= t.cfg.MaxAutoIndexes {
			ev := Event{Action: "reject", Table: c.Table, Column: c.Column, Constraint: c.Constraint,
				Score: c.Score, Note: fmt.Sprintf("auto index cap %d reached", t.cfg.MaxAutoIndexes)}
			t.rejects++
			t.logEvent(&ev)
			events = append(events, ev)
			t.cooldownUntil[c.key()] = t.cycle + t.cfg.CooldownCycles
			continue
		}
		if est := estimateBytes(rows); autoBytes+est > t.cfg.MemoryBudgetBytes {
			ev := Event{Action: "reject", Table: c.Table, Column: c.Column, Constraint: c.Constraint,
				Score: c.Score, Note: fmt.Sprintf("estimated %d B would exceed memory budget %d B", est, t.cfg.MemoryBudgetBytes)}
			t.rejects++
			t.logEvent(&ev)
			events = append(events, ev)
			t.cooldownUntil[c.key()] = t.cycle + t.cfg.CooldownCycles
			continue
		}
		spec := t.specFor(c, rows)
		ev := Event{Action: "create", Table: c.Table, Column: c.Column, Constraint: c.Constraint, Score: c.Score}
		if err := t.act.CreateIndex(spec, "auto"); err != nil {
			// Typically a threshold violation: the column is not nearly
			// unique/sorted enough. Journal as a reject and back off.
			ev.Action = "reject"
			ev.Err = err.Error()
			t.rejects++
			t.cooldownUntil[c.key()] = t.cycle + t.cfg.CooldownCycles
		} else {
			t.creates++
			builds++
			autoLive++
			autoBytes += estimateBytes(rows)
			t.createdTick[spec.key()] = tick
			ev.Note = fmt.Sprintf("threshold %.2f, %s", spec.Threshold, c.Reason)
		}
		t.logEvent(&ev)
		events = append(events, ev)
	}
	return events
}

// specFor derives the build spec of a candidate: threshold from the cost
// model's sweep, representation auto-chosen at build time.
func (t *Tuner) specFor(c Candidate, rows int64) IndexSpec {
	nuc, nsc := plan.RecommendThresholds(int(rows), 0)
	th := nuc
	if c.Constraint == "nsc" {
		th = nsc
	}
	if th <= 0 {
		th = plan.ShadowExceptionRate
	}
	return IndexSpec{
		Table: c.Table, Column: c.Column, Constraint: c.Constraint,
		Kind: "auto", Threshold: th,
	}
}

// estimateBytes is the pre-build footprint estimate of an index on a table
// of rows rows: identifier patches at the shadow exception rate, capped by
// the bitmap representation (1 bit/row).
func estimateBytes(rows int64) int64 {
	ident := int64(float64(rows) * plan.ShadowExceptionRate * 8)
	bitmap := rows/8 + 64
	if ident < bitmap {
		return ident + 64
	}
	return bitmap
}

// Rollback restores the index set captured when the tuner was created:
// indexes not in the baseline are dropped, baseline indexes that went
// missing are re-created (forced — they existed before, so they are
// presumed buildable). Returns the first error, after attempting everything.
func (t *Tuner) Rollback() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureBaseline()
	t.rollback++
	tick := t.prof.Tick()

	inBaseline := map[string]IndexSpec{}
	baselineCols := map[string]bool{}
	for _, s := range t.baseline {
		inBaseline[s.key()] = s
		baselineCols[s.colKey()] = true
	}
	states := t.act.Indexes()
	current := map[string]bool{}
	var firstErr error

	// Drop columns that hold any non-baseline index. DROP PATCHINDEX is
	// per-column, so baseline constraints on the same column are re-created
	// below.
	droppedCols := map[string]bool{}
	for _, st := range states {
		current[st.key()] = true
		if _, ok := inBaseline[st.key()]; ok {
			continue
		}
		if droppedCols[st.colKey()] {
			continue
		}
		droppedCols[st.colKey()] = true
		ev := Event{Action: "rollback", Tick: tick, Table: st.Table, Column: st.Column,
			Constraint: st.Constraint, Note: "drop non-baseline index"}
		if err := t.act.DropIndex(st.Table, st.Column); err != nil {
			ev.Err = err.Error()
			if firstErr == nil {
				firstErr = err
			}
		}
		delete(t.createdTick, st.key())
		t.logEvent(&ev)
	}
	// Re-create baseline indexes that are missing or whose column we just
	// dropped.
	for _, s := range t.baseline {
		if current[s.key()] && !droppedCols[s.colKey()] {
			continue
		}
		spec := s
		spec.Force = true
		ev := Event{Action: "rollback", Tick: tick, Table: s.Table, Column: s.Column,
			Constraint: s.Constraint, Note: "re-create baseline index"}
		if err := t.act.CreateIndex(spec, "manual"); err != nil {
			ev.Err = err.Error()
			if firstErr == nil {
				firstErr = err
			}
		}
		t.logEvent(&ev)
	}
	// A fresh start: forget hysteresis state so the next cycles re-evaluate.
	t.cooldownUntil = map[string]int64{}
	return firstErr
}

// logEvent appends to the bounded journal ring. Caller holds t.mu.
func (t *Tuner) logEvent(ev *Event) {
	t.seq++
	ev.Seq = t.seq
	ev.Cycle = t.cycle
	if ev.Tick == 0 {
		ev.Tick = t.prof.Tick()
	}
	t.journal = append(t.journal, *ev)
	if len(t.journal) > journalCap {
		t.journal = t.journal[len(t.journal)-journalCap:]
	}
	if t.notify != nil {
		t.notify(*ev)
	}
}

// Journal returns a copy of the journaled events, oldest first.
func (t *Tuner) Journal() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.journal))
	copy(out, t.journal)
	return out
}

// Status snapshots the tuner for /tuner and SHOW TUNER.
func (t *Tuner) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{
		Running:           t.running,
		IntervalMillis:    t.cfg.Interval.Milliseconds(),
		Cycles:            t.cycle,
		Creates:           t.creates,
		Drops:             t.drops,
		Rebuilds:          t.rebuilds,
		Rejects:           t.rejects,
		Rollbacks:         t.rollback,
		Tick:              t.prof.Tick(),
		Epoch:             t.act.Epoch(),
		MemoryBudgetBytes: t.cfg.MemoryBudgetBytes,
		MaxBuildsPerCycle: t.cfg.MaxBuildsPerCycle,
		MaxAutoIndexes:    t.cfg.MaxAutoIndexes,
		MinScore:          t.cfg.MinScore,
		Baseline:          append([]IndexSpec(nil), t.baseline...),
		LastCandidates:    append([]Candidate(nil), t.lastCand...),
		Journal:           append([]Event(nil), t.journal...),
	}
	for _, s := range t.act.Indexes() {
		if s.Origin == "auto" {
			st.AutoLive++
			st.AutoMemoryBytes += s.MemoryBytes
		}
	}
	return st
}
