package compress_test

import (
	"math/rand"
	"patchindex/internal/compress"
	"testing"
	"testing/quick"

	"patchindex/internal/discovery"
	"patchindex/internal/patch"
	"patchindex/internal/vector"
)

func intVec(vals ...int64) *vector.Vector {
	v := vector.New(vector.Int64, len(vals))
	for _, x := range vals {
		v.AppendInt64(x)
	}
	return v
}

func vecEqual(a, b *vector.Vector) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.IsNull(i) != b.IsNull(i) {
			return false
		}
		if !a.IsNull(i) && a.I64[i] != b.I64[i] {
			return false
		}
	}
	return true
}

func TestPFORRoundTrip(t *testing.T) {
	v := intVec(100, 101, 103, 99, 1_000_000, 102, 104)
	enc, err := compress.EncodePFOR(v)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEqual(v, compress.DecodePFOR(enc)) {
		t.Error("round trip failed")
	}
	if enc.Len() != v.Len() {
		t.Errorf("len = %d", enc.Len())
	}
}

func TestPFORDeltaRoundTrip(t *testing.T) {
	v := intVec(10, 12, 15, 15, 20, 19, 25)
	enc, err := compress.EncodePFORDelta(v)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEqual(v, compress.DecodePFORDelta(enc)) {
		t.Error("round trip failed")
	}
}

func TestPFORNulls(t *testing.T) {
	v := vector.New(vector.Int64, 0)
	v.AppendInt64(5)
	v.AppendNull()
	v.AppendInt64(7)
	v.AppendNull()
	for _, mode := range []string{"pfor", "delta"} {
		var enc *compress.PFOR
		var err error
		var dec *vector.Vector
		if mode == "pfor" {
			enc, err = compress.EncodePFOR(v)
			if err == nil {
				dec = compress.DecodePFOR(enc)
			}
		} else {
			enc, err = compress.EncodePFORDelta(v)
			if err == nil {
				dec = compress.DecodePFORDelta(enc)
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		if !vecEqual(v, dec) {
			t.Errorf("%s: null round trip failed", mode)
		}
	}
}

func TestPFORRejectsNonInteger(t *testing.T) {
	v := vector.New(vector.Float64, 0)
	v.AppendFloat64(1)
	if _, err := compress.EncodePFOR(v); err == nil {
		t.Error("float input must be rejected")
	}
}

func TestPFOREmptyAndSingle(t *testing.T) {
	for _, v := range []*vector.Vector{intVec(), intVec(42)} {
		enc, err := compress.EncodePFOR(v)
		if err != nil {
			t.Fatal(err)
		}
		if !vecEqual(v, compress.DecodePFOR(enc)) {
			t.Error("round trip failed")
		}
	}
}

// TestPFORRoundTripProperty: arbitrary inputs must survive both encodings.
func TestPFORRoundTripProperty(t *testing.T) {
	f := func(raw []int64, nullsRaw []uint8, delta bool) bool {
		v := vector.New(vector.Int64, len(raw))
		isNull := map[int]bool{}
		for _, n := range nullsRaw {
			if len(raw) > 0 {
				isNull[int(n)%len(raw)] = true
			}
		}
		for i, x := range raw {
			if isNull[i] {
				v.AppendNull()
			} else {
				v.AppendInt64(x)
			}
		}
		var enc *compress.PFOR
		var err error
		if delta {
			enc, err = compress.EncodePFORDelta(v)
		} else {
			enc, err = compress.EncodePFOR(v)
		}
		if err != nil {
			return false
		}
		if delta {
			return vecEqual(v, compress.DecodePFORDelta(enc))
		}
		return vecEqual(v, compress.DecodePFOR(enc))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPFORMultipleBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := vector.New(vector.Int64, 0)
	for i := 0; i < 5000; i++ {
		v.AppendInt64(rng.Int63n(1 << 40))
	}
	enc, err := compress.EncodePFOR(v)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEqual(v, compress.DecodePFOR(enc)) {
		t.Error("multi-block round trip failed")
	}
}

func TestPFORCompressesSmallRange(t *testing.T) {
	// Small-range values with rare huge outliers: the patched scheme must
	// stay near the small width.
	rng := rand.New(rand.NewSource(4))
	v := vector.New(vector.Int64, 0)
	n := 100_000
	for i := 0; i < n; i++ {
		if rng.Intn(100) == 0 {
			v.AppendInt64(rng.Int63()) // outlier
		} else {
			v.AppendInt64(1000 + rng.Int63n(255)) // 8-bit range
		}
	}
	enc, err := compress.EncodePFOR(v)
	if err != nil {
		t.Fatal(err)
	}
	ratio := compress.Ratio(compress.RawBytes(n), enc.CompressedBytes())
	if ratio < 3 {
		t.Errorf("outlier-robust compression ratio %.2f, want >= 3 (PFOR's whole point)", ratio)
	}
	if !vecEqual(v, compress.DecodePFOR(enc)) {
		t.Error("round trip failed")
	}
}

func TestEncodeWithPatchesRoundTrip(t *testing.T) {
	// Nearly sorted column with NULLs; patches from real discovery.
	rng := rand.New(rand.NewSource(5))
	v := vector.New(vector.Int64, 0)
	n := 20_000
	for i := 0; i < n; i++ {
		switch {
		case rng.Intn(200) == 0:
			v.AppendNull()
		case rng.Intn(50) == 0:
			v.AppendInt64(rng.Int63n(int64(n) * 10)) // misplaced
		default:
			v.AppendInt64(int64(i * 3))
		}
	}
	res := discovery.DiscoverNSC(v, false)
	set, err := patch.Build(patch.Auto, res.Patches, v.Len())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := compress.EncodeWithPatches(v, set, false)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEqual(v, pc.Decode()) {
		t.Fatal("patched round trip failed")
	}
	// The patched encoding must beat plain PFOR on nearly sorted data: the
	// sorted majority delta-compresses to a few bits per value.
	plain, err := compress.EncodePFOR(v)
	if err != nil {
		t.Fatal(err)
	}
	if pc.CompressedBytes() >= plain.CompressedBytes() {
		t.Errorf("patched %d B >= plain PFOR %d B — property-aware compression should win",
			pc.CompressedBytes(), plain.CompressedBytes())
	}
}

func TestEncodeWithPatchesDescending(t *testing.T) {
	v := intVec(100, 90, 95, 80, 70)
	res := discovery.DiscoverNSC(v, true)
	set, err := patch.Build(patch.Auto, res.Patches, v.Len())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := compress.EncodeWithPatches(v, set, true)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEqual(v, pc.Decode()) {
		t.Error("descending round trip failed")
	}
}

func TestEncodeWithPatchesValidation(t *testing.T) {
	v := intVec(1, 2, 3)
	set, _ := patch.Build(patch.Identifier, nil, 5) // wrong row count
	if _, err := compress.EncodeWithPatches(v, set, false); err == nil {
		t.Error("row count mismatch must fail")
	}
	// NULL outside the patch set must fail.
	nv := vector.New(vector.Int64, 0)
	nv.AppendInt64(1)
	nv.AppendNull()
	badSet, _ := patch.Build(patch.Identifier, nil, 2)
	if _, err := compress.EncodeWithPatches(nv, badSet, false); err == nil {
		t.Error("uncovered NULL must fail")
	}
	f := vector.New(vector.Float64, 0)
	f.AppendFloat64(1)
	fset, _ := patch.Build(patch.Identifier, nil, 1)
	if _, err := compress.EncodeWithPatches(f, fset, false); err == nil {
		t.Error("non-integer column must fail")
	}
}

// TestPatchedColumnProperty: random nearly sorted columns round-trip through
// the patched encoding for both set representations.
func TestPatchedColumnProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, noise uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%3000 + 1
		v := vector.New(vector.Int64, 0)
		for i := 0; i < n; i++ {
			switch {
			case rng.Intn(40) == 0:
				v.AppendNull()
			case rng.Intn(int(noise)%20+2) == 0:
				v.AppendInt64(rng.Int63n(int64(n) * 4))
			default:
				v.AppendInt64(int64(i))
			}
		}
		res := discovery.DiscoverNSC(v, false)
		for _, kind := range []patch.Kind{patch.Identifier, patch.Bitmap} {
			set, err := patch.Build(kind, res.Patches, v.Len())
			if err != nil {
				return false
			}
			pc, err := compress.EncodeWithPatches(v, set, false)
			if err != nil {
				return false
			}
			if !vecEqual(v, pc.Decode()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRatioAndSummary(t *testing.T) {
	if compress.Ratio(100, 0) != 0 {
		t.Error("zero compressed size guards division")
	}
	if compress.Ratio(100, 50) != 2 {
		t.Error("ratio math")
	}
	if compress.SizesSummary("x", 100, 50) == "" {
		t.Error("summary rendering")
	}
}
