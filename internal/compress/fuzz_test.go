package compress_test

import (
	"math/rand"
	"testing"

	"patchindex/internal/compress"
	"patchindex/internal/vector"
)

// FuzzPFORRoundTrip drives the whole integer-compression surface from fuzzed
// parameters: random NULL densities, adversarial bit-widths (values packed
// near every width boundary plus rare huge outliers that become patches),
// Int64 and Date vectors, sorted and shuffled — then checks full decode,
// block-aligned and unaligned range decode, and the binary serialization all
// reproduce the input exactly.
func FuzzPFORRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(10), uint8(0), uint8(3), false, false)
	f.Add(int64(2), uint16(1024), uint8(30), uint8(63), true, false)
	f.Add(int64(3), uint16(2500), uint8(100), uint8(1), false, true)
	f.Add(int64(4), uint16(4096), uint8(250), uint8(17), true, true)
	f.Add(int64(5), uint16(1), uint8(128), uint8(0), false, false)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, nullPct uint8, widthRaw uint8, isDate, sorted bool) {
		n := int(nRaw) % 5000
		width := uint(widthRaw) % 64
		rng := rand.New(rand.NewSource(seed))
		typ := vector.Int64
		if isDate {
			typ = vector.Date
		}
		orig := vector.New(typ, n)
		cur := int64(0)
		for i := 0; i < n; i++ {
			if int(nullPct)%101 > 0 && rng.Intn(101) < int(nullPct)%101 {
				orig.AppendNull()
				continue
			}
			// Values hugging the fuzzed bit-width, negatives included, with
			// ~1% extreme outliers to force exception patching.
			var x int64
			switch rng.Intn(100) {
			case 0:
				x = rng.Int63() - rng.Int63() // extreme outlier, any sign
			default:
				if width == 0 {
					x = 0
				} else {
					x = int64(rng.Uint64()&(1<<width-1)) - 1<<(width-1)
				}
			}
			if sorted {
				step := x % 16
				if step < 0 {
					step = -step
				}
				cur += step
				x = cur
			}
			orig.AppendInt64(x)
		}

		check := func(name string, got *vector.Vector) {
			t.Helper()
			if got.Len() != orig.Len() {
				t.Fatalf("%s: length %d, want %d", name, got.Len(), orig.Len())
			}
			for i := 0; i < orig.Len(); i++ {
				if got.IsNull(i) != orig.IsNull(i) {
					t.Fatalf("%s: row %d null=%v, want %v", name, i, got.IsNull(i), orig.IsNull(i))
				}
				if !orig.IsNull(i) && got.I64[i] != orig.I64[i] {
					t.Fatalf("%s: row %d = %d, want %d", name, i, got.I64[i], orig.I64[i])
				}
			}
		}

		// Differential: plain PFOR and PFOR-DELTA must agree on the same input.
		plain, err := compress.EncodePFOR(orig)
		if err != nil {
			t.Fatal(err)
		}
		check("pfor", compress.DecodePFOR(plain))
		delta, err := compress.EncodePFORDelta(orig)
		if err != nil {
			t.Fatal(err)
		}
		check("pfor-delta", compress.DecodePFORDelta(delta))

		// The scheme-picking container, with and without the sorted hint.
		for _, hint := range []bool{false, true} {
			enc, err := compress.EncodeColumn(orig, hint)
			if err != nil {
				t.Fatal(err)
			}
			full, err := enc.Decode()
			if err != nil {
				t.Fatal(err)
			}
			check(enc.Scheme.String(), full)

			// Range decode at fuzzed offsets: unaligned starts/ends crossing
			// the 1024-value block boundary.
			if n > 0 {
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo) + 1
				out := vector.New(typ, 0)
				if err := enc.DecodeRangeInto(out, lo, hi); err != nil {
					t.Fatal(err)
				}
				if out.Len() != hi-lo {
					t.Fatalf("range [%d,%d): got %d rows", lo, hi, out.Len())
				}
				for i := 0; i < out.Len(); i++ {
					if out.IsNull(i) != orig.IsNull(lo+i) {
						t.Fatalf("range row %d null mismatch", lo+i)
					}
					if !out.IsNull(i) && out.I64[i] != orig.I64[lo+i] {
						t.Fatalf("range row %d = %d, want %d", lo+i, out.I64[i], orig.I64[lo+i])
					}
				}
			}

			// Binary round trip: serialize, reparse, decode again.
			buf := enc.AppendBinary(nil)
			enc2, used, err := compress.DecodeEncoded(buf)
			if err != nil {
				t.Fatal(err)
			}
			if used != len(buf) {
				t.Fatalf("DecodeEncoded consumed %d of %d bytes", used, len(buf))
			}
			full2, err := enc2.Decode()
			if err != nil {
				t.Fatal(err)
			}
			check("binary/"+enc.Scheme.String(), full2)
		}
	})
}
