// Package compress implements the patched compression schemes the paper
// builds its intuition on — PFOR and PFOR-DELTA (Zukowski et al., ICDE 2006,
// reference [12]) — and the PatchIndex-aware column compression the paper
// names as future work: "potentially increasing compression ratios when
// treating discovered set of patches separately and this way basing
// compression algorithms on discovered properties of data".
//
// The connection is direct: a PatchIndex proves a property (uniqueness,
// sortedness) for every non-patch row. For a nearly sorted column the
// non-patch subsequence is monotone, so its deltas are non-negative and
// small — ideal for PFOR-DELTA — while the exceptions, which would otherwise
// blow up the bit width for the whole block, live in the patch side and are
// stored verbatim.
package compress

import (
	"fmt"
	"math/bits"

	"patchindex/internal/patch"
	"patchindex/internal/vector"
)

// pforBlockSize is the number of values per PFOR block.
const pforBlockSize = 1024

// PFOR is a "patched frame of reference" encoding of an int64 sequence:
// per block, values are stored as fixed-width offsets from the block
// minimum; values that do not fit the chosen bit width are exceptions,
// stored verbatim in a per-block patch list (the in-block analogue of a
// PatchIndex).
type PFOR struct {
	blocks []pforBlock
	n      int
}

type pforBlock struct {
	ref      int64  // frame of reference (block minimum of non-exceptions)
	base     int64  // delta only: running absolute value at block entry
	width    uint8  // bits per packed value
	n        int    // values in the block
	packed   []byte // bit-packed offsets (exceptions hold 0)
	excIdx   []uint32
	excVals  []int64
	nullMask []uint64 // nil when the block has no NULLs
}

// EncodePFOR compresses the vector (Int64/Date) with plain PFOR.
func EncodePFOR(v *vector.Vector) (*PFOR, error) {
	return encodePFOR(v, false)
}

// EncodePFORDelta compresses the vector with PFOR-DELTA: consecutive
// differences are PFOR-encoded. Best for (nearly) sorted inputs, where the
// deltas are small and non-negative.
func EncodePFORDelta(v *vector.Vector) (*PFOR, error) {
	return encodePFOR(v, true)
}

func encodePFOR(v *vector.Vector, delta bool) (*PFOR, error) {
	if v.Typ != vector.Int64 && v.Typ != vector.Date {
		return nil, fmt.Errorf("compress: PFOR supports integer columns, got %s", v.Typ)
	}
	out := &PFOR{n: v.Len()}
	vals := make([]int64, 0, pforBlockSize)
	nulls := make([]bool, 0, pforBlockSize)
	prev := int64(0)
	for start := 0; start < v.Len(); start += pforBlockSize {
		end := start + pforBlockSize
		if end > v.Len() {
			end = v.Len()
		}
		vals = vals[:0]
		nulls = nulls[:0]
		base := prev
		for i := start; i < end; i++ {
			if v.IsNull(i) {
				vals = append(vals, prev) // placeholder keeps deltas stable
				nulls = append(nulls, true)
				continue
			}
			x := v.I64[i]
			if delta {
				vals = append(vals, x-prev)
				prev = x
			} else {
				vals = append(vals, x)
			}
			nulls = append(nulls, false)
		}
		blk := packBlock(vals, nulls)
		blk.base = base
		out.blocks = append(out.blocks, blk)
	}
	return out, nil
}

// packBlock chooses the narrowest width covering ~the 90th percentile of the
// offsets and patches everything wider.
func packBlock(vals []int64, nulls []bool) pforBlock {
	blk := pforBlock{n: len(vals)}
	// Frame of reference: minimum non-null value.
	ref := int64(0)
	found := false
	for i, x := range vals {
		if nulls[i] {
			continue
		}
		if !found || x < ref {
			ref = x
			found = true
		}
	}
	blk.ref = ref
	// Offset widths; NULL slots are stored as exceptions of value 0.
	widths := make([]uint8, len(vals))
	for i, x := range vals {
		if nulls[i] {
			widths[i] = 255
			continue
		}
		widths[i] = uint8(bits.Len64(uint64(x - ref)))
	}
	blk.width = chooseWidth(widths)
	// Pack.
	blk.packed = make([]byte, (len(vals)*int(blk.width)+7)/8)
	for i, x := range vals {
		if nulls[i] || widths[i] > blk.width {
			blk.excIdx = append(blk.excIdx, uint32(i))
			blk.excVals = append(blk.excVals, x)
			if nulls[i] {
				if blk.nullMask == nil {
					blk.nullMask = make([]uint64, (len(vals)+63)/64)
				}
				blk.nullMask[i>>6] |= 1 << (i & 63)
			}
			continue
		}
		putBits(blk.packed, i, blk.width, uint64(x-ref))
	}
	return blk
}

// chooseWidth picks the bit width minimizing packed + exception bytes.
func chooseWidth(widths []uint8) uint8 {
	var hist [65]int
	nonNull := 0
	for _, w := range widths {
		if w == 255 {
			continue
		}
		hist[w]++
		nonNull++
	}
	bestW, bestCost := uint8(64), 1<<62
	cum := 0
	for w := 0; w <= 64; w++ {
		cum += hist[w]
		exceptions := nonNull - cum
		cost := len(widths)*w/8 + exceptions*12 // 8B value + 4B index
		if cost < bestCost {
			bestCost, bestW = cost, uint8(w)
		}
	}
	return bestW
}

// putBits writes value into the packed array at slot i of the given width.
func putBits(dst []byte, i int, width uint8, val uint64) {
	if width == 0 {
		return
	}
	bitPos := i * int(width)
	for w := 0; w < int(width); {
		byteIdx := (bitPos + w) >> 3
		bitIdx := (bitPos + w) & 7
		take := 8 - bitIdx
		if take > int(width)-w {
			take = int(width) - w
		}
		chunk := byte((val >> uint(w)) & ((1 << uint(take)) - 1))
		dst[byteIdx] |= chunk << uint(bitIdx)
		w += take
	}
}

// getBits reads slot i of the given width.
func getBits(src []byte, i int, width uint8) uint64 {
	if width == 0 {
		return 0
	}
	bitPos := i * int(width)
	var val uint64
	for w := 0; w < int(width); {
		byteIdx := (bitPos + w) >> 3
		bitIdx := (bitPos + w) & 7
		take := 8 - bitIdx
		if take > int(width)-w {
			take = int(width) - w
		}
		chunk := uint64(src[byteIdx]>>uint(bitIdx)) & ((1 << uint(take)) - 1)
		val |= chunk << uint(w)
		w += take
	}
	return val
}

// Len returns the number of encoded values.
func (p *PFOR) Len() int { return p.n }

// CompressedBytes returns the payload size of the encoding.
func (p *PFOR) CompressedBytes() int {
	total := 0
	for _, b := range p.blocks {
		total += len(b.packed) + 12*len(b.excIdx) + 8*len(b.nullMask) + 16
	}
	return total
}

// decode reconstructs the raw (possibly delta) values and null positions.
func (p *PFOR) decode() ([]int64, []bool) {
	vals := make([]int64, 0, p.n)
	nulls := make([]bool, 0, p.n)
	for _, b := range p.blocks {
		base := len(vals)
		for i := 0; i < b.n; i++ {
			vals = append(vals, b.ref+int64(getBits(b.packed, i, b.width)))
			nulls = append(nulls, false)
		}
		for k, idx := range b.excIdx {
			vals[base+int(idx)] = b.excVals[k]
			if b.nullMask != nil && b.nullMask[idx>>6]&(1<<(idx&63)) != 0 {
				nulls[base+int(idx)] = true
			}
		}
	}
	return vals, nulls
}

// DecodePFOR reconstructs the original vector from a plain PFOR encoding.
func DecodePFOR(p *PFOR) *vector.Vector {
	vals, nulls := p.decode()
	out := vector.New(vector.Int64, len(vals))
	for i, x := range vals {
		if nulls[i] {
			out.AppendNull()
		} else {
			out.AppendInt64(x)
		}
	}
	return out
}

// DecodePFORDelta reconstructs the original vector from a PFOR-DELTA
// encoding.
func DecodePFORDelta(p *PFOR) *vector.Vector {
	vals, nulls := p.decode()
	out := vector.New(vector.Int64, len(vals))
	prev := int64(0)
	for i, d := range vals {
		if nulls[i] {
			out.AppendNull()
			continue
		}
		prev += d
		out.AppendInt64(prev)
	}
	return out
}

// decodeBlock reconstructs one block's raw (possibly delta) values and null
// flags into caller scratch, returning the filled slices.
func decodeBlock(b *pforBlock, vals []int64, nulls []bool) ([]int64, []bool) {
	vals = vals[:0]
	nulls = nulls[:0]
	for i := 0; i < b.n; i++ {
		vals = append(vals, b.ref+int64(getBits(b.packed, i, b.width)))
		nulls = append(nulls, false)
	}
	for k, idx := range b.excIdx {
		vals[idx] = b.excVals[k]
		if b.nullMask != nil && b.nullMask[idx>>6]&(1<<(idx&63)) != 0 {
			nulls[idx] = true
		}
	}
	return vals, nulls
}

// DecodeRangeInto appends rows [start,end) of a plain PFOR encoding onto out.
// It decodes only the blocks overlapping the range, which is what makes
// morsel-granular scans over compressed segments cheap: a 1K-row morsel
// touches at most two blocks regardless of column length.
func (p *PFOR) DecodeRangeInto(out *vector.Vector, start, end int) {
	if end > p.n {
		end = p.n
	}
	var vals [pforBlockSize]int64
	var nulls [pforBlockSize]bool
	for bi := start / pforBlockSize; bi*pforBlockSize < end; bi++ {
		b := &p.blocks[bi]
		bstart := bi * pforBlockSize
		vs, ns := decodeBlock(b, vals[:0], nulls[:0])
		lo, hi := 0, b.n
		if bstart < start {
			lo = start - bstart
		}
		if bstart+hi > end {
			hi = end - bstart
		}
		for i := lo; i < hi; i++ {
			if ns[i] {
				out.AppendNull()
			} else {
				out.AppendInt64(vs[i])
			}
		}
	}
}

// DecodeDeltaRangeInto appends rows [start,end) of a PFOR-DELTA encoding onto
// out. The per-block base (the running value at block entry, recorded at
// encode time) lets any block decode without replaying the whole prefix; the
// prefix sum only has to run from the start of the first overlapping block.
func (p *PFOR) DecodeDeltaRangeInto(out *vector.Vector, start, end int) {
	if end > p.n {
		end = p.n
	}
	var vals [pforBlockSize]int64
	var nulls [pforBlockSize]bool
	for bi := start / pforBlockSize; bi*pforBlockSize < end; bi++ {
		b := &p.blocks[bi]
		bstart := bi * pforBlockSize
		vs, ns := decodeBlock(b, vals[:0], nulls[:0])
		hi := b.n
		if bstart+hi > end {
			hi = end - bstart
		}
		prev := b.base
		for i := 0; i < hi; i++ {
			if ns[i] {
				if bstart+i >= start {
					out.AppendNull()
				}
				continue
			}
			prev += vs[i]
			if bstart+i >= start {
				out.AppendInt64(prev)
			}
		}
	}
}

// PatchedColumn is the PatchIndex-aware column encoding: the non-patch
// subsequence of a nearly sorted column is PFOR-DELTA compressed (its deltas
// are non-negative and small by NSC1), the patch rows are stored verbatim
// with their row ids. It demonstrates the future-work claim: the discovered
// property of the data selects the compression scheme.
type PatchedColumn struct {
	clean   *PFOR
	descend bool
	patchID []uint32
	patchV  []int64
	nullID  []uint32 // patches that are NULL
	n       int
}

// EncodeWithPatches compresses column v using the patch set of its
// partition's NSC PatchIndex.
func EncodeWithPatches(v *vector.Vector, set patch.Set, descending bool) (*PatchedColumn, error) {
	if v.Typ != vector.Int64 && v.Typ != vector.Date {
		return nil, fmt.Errorf("compress: patched encoding supports integer columns, got %s", v.Typ)
	}
	if set.NumRows() != v.Len() {
		return nil, fmt.Errorf("compress: patch set covers %d rows, column has %d", set.NumRows(), v.Len())
	}
	pc := &PatchedColumn{descend: descending, n: v.Len()}
	clean := vector.New(vector.Int64, v.Len()-set.Cardinality())
	it := set.Iter(0)
	for i := 0; i < v.Len(); i++ {
		if it.Valid() && it.Row() == uint64(i) {
			it.Next()
			if v.IsNull(i) {
				pc.nullID = append(pc.nullID, uint32(i))
				continue
			}
			pc.patchID = append(pc.patchID, uint32(i))
			pc.patchV = append(pc.patchV, v.I64[i])
			continue
		}
		if v.IsNull(i) {
			return nil, fmt.Errorf("compress: NULL at non-patch row %d (patch sets must cover NULLs)", i)
		}
		x := v.I64[i]
		if descending {
			x = -x
		}
		clean.AppendInt64(x)
	}
	enc, err := EncodePFORDelta(clean)
	if err != nil {
		return nil, err
	}
	pc.clean = enc
	return pc, nil
}

// Decode reconstructs the original column.
func (pc *PatchedColumn) Decode() *vector.Vector {
	clean := DecodePFORDelta(pc.clean)
	out := vector.New(vector.Int64, pc.n)
	pi, ni, ci := 0, 0, 0
	for i := 0; i < pc.n; i++ {
		switch {
		case ni < len(pc.nullID) && pc.nullID[ni] == uint32(i):
			out.AppendNull()
			ni++
		case pi < len(pc.patchID) && pc.patchID[pi] == uint32(i):
			out.AppendInt64(pc.patchV[pi])
			pi++
		default:
			x := clean.I64[ci]
			if pc.descend {
				x = -x
			}
			out.AppendInt64(x)
			ci++
		}
	}
	return out
}

// CompressedBytes returns the total payload of the patched encoding.
func (pc *PatchedColumn) CompressedBytes() int {
	return pc.clean.CompressedBytes() + 12*len(pc.patchID) + 4*len(pc.nullID)
}

// RawBytes returns the uncompressed size of an n-value int64 column.
func RawBytes(n int) int { return 8 * n }

// Ratio is a convenience: raw size divided by compressed size.
func Ratio(raw, compressed int) float64 {
	if compressed == 0 {
		return 0
	}
	return float64(raw) / float64(compressed)
}

// SizesSummary renders an encoding comparison line for reports.
func SizesSummary(name string, raw, compressed int) string {
	return fmt.Sprintf("%-24s %10d B  ratio %.2fx", name, compressed, Ratio(raw, compressed))
}
