package compress

import (
	"encoding/binary"
	"fmt"

	"patchindex/internal/vector"
)

// Scheme identifies how a column segment's payload is encoded on disk.
type Scheme uint8

const (
	// SchemeRaw stores the vector codec's byte image verbatim. Fallback for
	// floats, bools, and anything compression doesn't shrink.
	SchemeRaw Scheme = iota
	// SchemePFOR is patched frame-of-reference over Int64/Date.
	SchemePFOR
	// SchemePFORDelta is PFOR over consecutive deltas — the PatchIndex-aware
	// choice when an index proves the column (nearly) sorted.
	SchemePFORDelta
	// SchemeDict is dictionary + bit-packed codes for strings.
	SchemeDict
)

func (s Scheme) String() string {
	switch s {
	case SchemeRaw:
		return "raw"
	case SchemePFOR:
		return "pfor"
	case SchemePFORDelta:
		return "pfor-delta"
	case SchemeDict:
		return "dict"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Encoded is one column's compressed image: the in-memory parsed form that
// segment files serialize and scans range-decode from without full
// materialization.
type Encoded struct {
	Scheme Scheme
	Typ    vector.Type
	n      int
	pfor   *PFOR       // SchemePFOR / SchemePFORDelta
	dict   *DictString // SchemeDict
	raw    []byte      // SchemeRaw: vector codec image
}

// EncodeColumn compresses a column vector, picking the cheapest applicable
// scheme by measured payload size. sortedHint biases Int64/Date columns
// toward PFOR-DELTA without trying plain PFOR first — the caller passes it
// when a PatchIndex has proven the column nearly sorted, which is the
// paper's future-work connection: discovered data properties select the
// compression algorithm.
func EncodeColumn(v *vector.Vector, sortedHint bool) (*Encoded, error) {
	e := &Encoded{Typ: v.Typ, n: v.Len()}
	switch v.Typ {
	case vector.Int64, vector.Date:
		if sortedHint {
			p, err := EncodePFORDelta(v)
			if err != nil {
				return nil, err
			}
			e.Scheme, e.pfor = SchemePFORDelta, p
		} else {
			plain, err := EncodePFOR(v)
			if err != nil {
				return nil, err
			}
			delta, err := EncodePFORDelta(v)
			if err != nil {
				return nil, err
			}
			if delta.CompressedBytes() < plain.CompressedBytes() {
				e.Scheme, e.pfor = SchemePFORDelta, delta
			} else {
				e.Scheme, e.pfor = SchemePFOR, plain
			}
		}
		if e.pfor.CompressedBytes() >= RawBytes(v.Len()) {
			e.Scheme, e.pfor = SchemeRaw, nil
			e.raw = v.AppendBinary(nil)
		}
	case vector.String:
		d, err := EncodeDictString(v)
		if err != nil {
			return nil, err
		}
		raw := v.AppendBinary(nil)
		if d.CompressedBytes() < len(raw) {
			e.Scheme, e.dict = SchemeDict, d
		} else {
			e.Scheme, e.raw = SchemeRaw, raw
		}
	default:
		e.Scheme = SchemeRaw
		e.raw = v.AppendBinary(nil)
	}
	return e, nil
}

// Len returns the number of encoded rows.
func (e *Encoded) Len() int { return e.n }

// CompressedBytes returns the payload size of the encoding.
func (e *Encoded) CompressedBytes() int {
	switch e.Scheme {
	case SchemePFOR, SchemePFORDelta:
		return e.pfor.CompressedBytes()
	case SchemeDict:
		return e.dict.CompressedBytes()
	default:
		return len(e.raw)
	}
}

// DecodeRangeInto appends rows [start,end) onto out, decoding only the
// blocks the range touches.
func (e *Encoded) DecodeRangeInto(out *vector.Vector, start, end int) error {
	if end > e.n {
		end = e.n
	}
	switch e.Scheme {
	case SchemePFOR:
		e.pfor.DecodeRangeInto(out, start, end)
	case SchemePFORDelta:
		e.pfor.DecodeDeltaRangeInto(out, start, end)
	case SchemeDict:
		e.dict.DecodeRangeInto(out, start, end)
	case SchemeRaw:
		v, _, err := vector.DecodeVector(e.raw)
		if err != nil {
			return err
		}
		out.AppendRange(v, start, end)
	default:
		return fmt.Errorf("compress: unknown scheme %d", e.Scheme)
	}
	return nil
}

// Decode reconstructs the full column.
func (e *Encoded) Decode() (*vector.Vector, error) {
	if e.Scheme == SchemeRaw {
		v, _, err := vector.DecodeVector(e.raw)
		return v, err
	}
	out := vector.New(e.Typ, e.n)
	if err := e.DecodeRangeInto(out, 0, e.n); err != nil {
		return nil, err
	}
	return out, nil
}

// AppendBinary serializes the encoding onto buf:
//
//	scheme uint8, typ uint8, n uint32, payload
func (e *Encoded) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(e.Scheme), byte(e.Typ))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.n))
	switch e.Scheme {
	case SchemePFOR, SchemePFORDelta:
		buf = appendPFOR(buf, e.pfor)
	case SchemeDict:
		buf = appendDict(buf, e.dict)
	default:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.raw)))
		buf = append(buf, e.raw...)
	}
	return buf
}

// DecodeEncoded parses one column encoding, returning it and the bytes
// consumed.
func DecodeEncoded(data []byte) (*Encoded, int, error) {
	if len(data) < 6 {
		return nil, 0, fmt.Errorf("compress: truncated encoding header")
	}
	e := &Encoded{Scheme: Scheme(data[0]), Typ: vector.Type(data[1])}
	e.n = int(binary.LittleEndian.Uint32(data[2:6]))
	pos := 6
	var err error
	var used int
	switch e.Scheme {
	case SchemePFOR, SchemePFORDelta:
		e.pfor, used, err = decodePFORBinary(data[pos:], e.n)
	case SchemeDict:
		e.dict, used, err = decodeDictBinary(data[pos:], e.n)
	case SchemeRaw:
		if len(data) < pos+4 {
			return nil, 0, fmt.Errorf("compress: truncated raw length")
		}
		ln := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if ln > len(data)-pos {
			return nil, 0, fmt.Errorf("compress: truncated raw payload")
		}
		e.raw = append([]byte(nil), data[pos:pos+ln]...)
		used = ln
	default:
		return nil, 0, fmt.Errorf("compress: unknown scheme %d", e.Scheme)
	}
	if err != nil {
		return nil, 0, err
	}
	return e, pos + used, nil
}

func appendPFOR(buf []byte, p *PFOR) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.blocks)))
	for i := range p.blocks {
		b := &p.blocks[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.ref))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.base))
		buf = append(buf, b.width)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(b.n))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.packed)))
		buf = append(buf, b.packed...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.excIdx)))
		for _, ix := range b.excIdx {
			buf = binary.LittleEndian.AppendUint32(buf, ix)
		}
		for _, xv := range b.excVals {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(xv))
		}
		if b.nullMask == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			for _, w := range b.nullMask {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		}
	}
	return buf
}

func decodePFORBinary(data []byte, n int) (*PFOR, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("compress: truncated PFOR block count")
	}
	nb := int(binary.LittleEndian.Uint32(data))
	pos := 4
	p := &PFOR{n: n, blocks: make([]pforBlock, nb)}
	for i := 0; i < nb; i++ {
		b := &p.blocks[i]
		if len(data) < pos+23 {
			return nil, 0, fmt.Errorf("compress: truncated PFOR block header")
		}
		b.ref = int64(binary.LittleEndian.Uint64(data[pos:]))
		b.base = int64(binary.LittleEndian.Uint64(data[pos+8:]))
		b.width = data[pos+16]
		b.n = int(binary.LittleEndian.Uint16(data[pos+17:]))
		pl := int(binary.LittleEndian.Uint32(data[pos+19:]))
		pos += 23
		if b.n > pforBlockSize || pl > len(data)-pos {
			return nil, 0, fmt.Errorf("compress: corrupt PFOR block")
		}
		b.packed = append([]byte(nil), data[pos:pos+pl]...)
		pos += pl
		if len(data) < pos+4 {
			return nil, 0, fmt.Errorf("compress: truncated exception count")
		}
		ne := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if ne > b.n || len(data) < pos+12*ne {
			return nil, 0, fmt.Errorf("compress: corrupt PFOR exceptions")
		}
		if ne > 0 {
			b.excIdx = make([]uint32, ne)
			b.excVals = make([]int64, ne)
			for k := 0; k < ne; k++ {
				b.excIdx[k] = binary.LittleEndian.Uint32(data[pos:])
				pos += 4
			}
			for k := 0; k < ne; k++ {
				b.excVals[k] = int64(binary.LittleEndian.Uint64(data[pos:]))
				pos += 8
			}
		}
		if len(data) < pos+1 {
			return nil, 0, fmt.Errorf("compress: truncated null flag")
		}
		hasNull := data[pos] == 1
		pos++
		if hasNull {
			nw := (b.n + 63) / 64
			if len(data) < pos+8*nw {
				return nil, 0, fmt.Errorf("compress: truncated null mask")
			}
			b.nullMask = make([]uint64, nw)
			for k := 0; k < nw; k++ {
				b.nullMask[k] = binary.LittleEndian.Uint64(data[pos:])
				pos += 8
			}
		}
	}
	return p, pos, nil
}

func appendDict(buf []byte, d *DictString) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.dict)))
	for _, s := range d.dict {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf, d.width)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.codes)))
	buf = append(buf, d.codes...)
	if d.nullMask == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, w := range d.nullMask {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	return buf
}

func decodeDictBinary(data []byte, n int) (*DictString, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("compress: truncated dictionary size")
	}
	nd := int(binary.LittleEndian.Uint32(data))
	pos := 4
	if nd > n && n > 0 {
		return nil, 0, fmt.Errorf("compress: dictionary larger than column")
	}
	d := &DictString{n: n, dict: make([]string, nd)}
	for i := 0; i < nd; i++ {
		if len(data) < pos+4 {
			return nil, 0, fmt.Errorf("compress: truncated dictionary entry")
		}
		ln := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if ln > len(data)-pos {
			return nil, 0, fmt.Errorf("compress: truncated dictionary entry")
		}
		d.dict[i] = string(data[pos : pos+ln])
		pos += ln
	}
	if len(data) < pos+5 {
		return nil, 0, fmt.Errorf("compress: truncated code header")
	}
	d.width = data[pos]
	cl := int(binary.LittleEndian.Uint32(data[pos+1:]))
	pos += 5
	if cl > len(data)-pos {
		return nil, 0, fmt.Errorf("compress: truncated codes")
	}
	d.codes = append([]byte(nil), data[pos:pos+cl]...)
	pos += cl
	if len(data) < pos+1 {
		return nil, 0, fmt.Errorf("compress: truncated null flag")
	}
	hasNull := data[pos] == 1
	pos++
	if hasNull {
		nw := (n + 63) / 64
		if len(data) < pos+8*nw {
			return nil, 0, fmt.Errorf("compress: truncated null mask")
		}
		d.nullMask = make([]uint64, nw)
		for k := 0; k < nw; k++ {
			d.nullMask[k] = binary.LittleEndian.Uint64(data[pos:])
			pos += 8
		}
	}
	return d, pos, nil
}
