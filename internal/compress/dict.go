package compress

import (
	"fmt"
	"math/bits"

	"patchindex/internal/vector"
)

// DictString is a dictionary encoding for string columns: distinct values in
// first-occurrence order plus bit-packed codes (width = bits needed for the
// dictionary size). NULLs live in a separate bitmap; their code slots pack 0.
// Low-cardinality columns (status flags, regions, nations) collapse to a
// couple of bits per row.
type DictString struct {
	dict     []string
	codes    []byte // bit-packed, width bits per row
	width    uint8
	nullMask []uint64 // nil when the column has no NULLs
	n        int
}

// EncodeDictString builds a dictionary encoding of a string vector.
func EncodeDictString(v *vector.Vector) (*DictString, error) {
	if v.Typ != vector.String {
		return nil, fmt.Errorf("compress: dictionary encoding supports string columns, got %s", v.Typ)
	}
	n := v.Len()
	d := &DictString{n: n}
	ids := make(map[string]uint64, 64)
	raw := make([]uint64, n)
	for i := 0; i < n; i++ {
		if v.IsNull(i) {
			if d.nullMask == nil {
				d.nullMask = make([]uint64, (n+63)/64)
			}
			d.nullMask[i>>6] |= 1 << (i & 63)
			continue
		}
		s := v.Str[i]
		id, ok := ids[s]
		if !ok {
			id = uint64(len(d.dict))
			ids[s] = id
			d.dict = append(d.dict, s)
		}
		raw[i] = id
	}
	if len(d.dict) > 1 {
		d.width = uint8(bits.Len64(uint64(len(d.dict) - 1)))
	}
	d.codes = make([]byte, (n*int(d.width)+7)/8)
	for i, id := range raw {
		putBits(d.codes, i, d.width, id)
	}
	return d, nil
}

// Len returns the number of encoded values.
func (d *DictString) Len() int { return d.n }

// Cardinality returns the dictionary size.
func (d *DictString) Cardinality() int { return len(d.dict) }

// CompressedBytes returns the payload size of the encoding.
func (d *DictString) CompressedBytes() int {
	total := len(d.codes) + 8*len(d.nullMask)
	for _, s := range d.dict {
		total += len(s) + 4
	}
	return total
}

// DecodeRangeInto appends rows [start,end) onto out. Decoded strings share
// the dictionary's backing storage, so a wide scan over a dict column costs
// code lookups, not string copies.
func (d *DictString) DecodeRangeInto(out *vector.Vector, start, end int) {
	if end > d.n {
		end = d.n
	}
	for i := start; i < end; i++ {
		if d.nullMask != nil && d.nullMask[i>>6]&(1<<(i&63)) != 0 {
			out.AppendNull()
			continue
		}
		out.AppendString(d.dict[getBits(d.codes, i, d.width)])
	}
}

// Decode reconstructs the original column.
func (d *DictString) Decode() *vector.Vector {
	out := vector.New(vector.String, d.n)
	d.DecodeRangeInto(out, 0, d.n)
	return out
}
