package storage

import (
	"math"
	"testing"

	"patchindex/internal/vector"
)

func numTable(t *testing.T, parts int) *Table {
	t.Helper()
	tab, err := NewTable("t", NewSchema(
		Column{Name: "a", Typ: vector.Int64},
		Column{Name: "b", Typ: vector.Float64},
	), parts)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestZoneMapMaintainedOnAppend(t *testing.T) {
	tab := numTable(t, 2)
	// Empty partition: invalid entry, nothing prunable.
	z := tab.ZoneMap(0, 0)
	if z.Valid || z.Rows != 0 {
		t.Fatalf("empty partition zone = %+v", z)
	}
	if tab.ZonePrunes(0, 0, vector.IntValue(0), vector.IntValue(10)) {
		t.Error("empty partition must not prune (plan shape is preserved elsewhere)")
	}

	for _, x := range []int64{5, -3, 17} {
		if err := tab.AppendRow(0, []vector.Value{vector.IntValue(x), vector.FloatValue(float64(x))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.AppendRow(0, []vector.Value{vector.NullValue(vector.Int64), vector.FloatValue(1)}); err != nil {
		t.Fatal(err)
	}
	z = tab.ZoneMap(0, 0)
	if !z.Valid || z.Min.I64 != -3 || z.Max.I64 != 17 || !z.HasNull || z.Rows != 4 {
		t.Fatalf("zone after appends = %+v", z)
	}
	// Partition 1 untouched by partition 0's appends.
	if tab.ZoneMap(1, 0).Valid {
		t.Error("partition 1 zone must still be empty")
	}

	// [lo,hi] disjoint from [-3,17] prunes; overlapping does not.
	if !tab.ZonePrunes(0, 0, vector.IntValue(18), vector.NullValue(vector.Int64)) {
		t.Error("lo above max must prune")
	}
	if !tab.ZonePrunes(0, 0, vector.NullValue(vector.Int64), vector.IntValue(-4)) {
		t.Error("hi below min must prune")
	}
	if tab.ZonePrunes(0, 0, vector.IntValue(17), vector.NullValue(vector.Int64)) {
		t.Error("inclusive bound touching max must not prune")
	}
	if tab.ZonePrunes(0, 0, vector.NullValue(vector.Int64), vector.NullValue(vector.Int64)) {
		t.Error("unbounded interval must not prune")
	}
}

func TestZoneMapAllNullColumn(t *testing.T) {
	tab := numTable(t, 1)
	for i := 0; i < 3; i++ {
		if err := tab.AppendRow(0, []vector.Value{vector.NullValue(vector.Int64), vector.FloatValue(0)}); err != nil {
			t.Fatal(err)
		}
	}
	z := tab.ZoneMap(0, 0)
	if z.Valid || !z.HasNull || z.Rows != 3 {
		t.Fatalf("all-NULL zone = %+v", z)
	}
	// A range predicate cannot match NULLs, so the partition prunes even
	// though it has rows.
	if !tab.ZonePrunes(0, 0, vector.IntValue(0), vector.IntValue(100)) {
		t.Error("all-NULL column must prune any bounded predicate")
	}
}

// TestZoneMapAllAppendPaths: every ingestion path (row-at-a-time, batch,
// whole columns) must maintain the same zone map — recovery reloads data
// through these paths, so this is what makes zone maps rebuild on replay.
func TestZoneMapAllAppendPaths(t *testing.T) {
	vals := []int64{7, -2, 0, 99, 41}
	rowTab := numTable(t, 1)
	batchTab := numTable(t, 1)
	colTab := numTable(t, 1)

	for _, x := range vals {
		if err := rowTab.AppendRow(0, []vector.Value{vector.IntValue(x), vector.FloatValue(float64(x))}); err != nil {
			t.Fatal(err)
		}
	}
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.Float64})
	a := vector.New(vector.Int64, len(vals))
	f := vector.New(vector.Float64, len(vals))
	for _, x := range vals {
		b.Vecs[0].AppendInt64(x)
		b.Vecs[1].AppendFloat64(float64(x))
		a.AppendInt64(x)
		f.AppendFloat64(float64(x))
	}
	if err := batchTab.AppendBatch(0, b); err != nil {
		t.Fatal(err)
	}
	if err := colTab.AppendColumns(0, []*vector.Vector{a, f}); err != nil {
		t.Fatal(err)
	}

	want := rowTab.ZoneMap(0, 0)
	for name, tab := range map[string]*Table{"batch": batchTab, "columns": colTab} {
		got := tab.ZoneMap(0, 0)
		if got != want {
			t.Errorf("%s append path zone = %+v, want %+v", name, got, want)
		}
	}
	if !want.Valid || want.Min.I64 != -2 || want.Max.I64 != 99 {
		t.Errorf("zone = %+v", want)
	}
}

// TestZoneMapMixedTypeBounds pins the exact int/float boundary comparisons:
// a float bound between two int values, and bounds beyond 2^53 where a
// float64 round-trip of the int would lie.
func TestZoneMapMixedTypeBounds(t *testing.T) {
	tab := numTable(t, 1)
	const p53 = int64(1) << 53
	for _, x := range []int64{-9000, 0, p53 + 1} {
		if err := tab.AppendRow(0, []vector.Value{vector.IntValue(x), vector.FloatValue(0)}); err != nil {
			t.Fatal(err)
		}
	}
	// Max is 2^53+1; a float lo of exactly 2^53 does NOT prune (2^53+1 ≥ lo)
	// even though float64(2^53+1) == 2^53 would make them look equal.
	if tab.ZonePrunes(0, 0, vector.FloatValue(math.Pow(2, 53)), vector.NullValue(vector.Int64)) {
		t.Error("lo=2^53 must not prune a partition whose max is 2^53+1")
	}
	// lo strictly above the true max prunes.
	if !tab.ZonePrunes(0, 0, vector.FloatValue(math.Pow(2, 54)), vector.NullValue(vector.Int64)) {
		t.Error("lo=2^54 must prune")
	}
	// Fractional hi below the min: -9000 > -9000.5 ⇒ prune.
	if !tab.ZonePrunes(0, 0, vector.NullValue(vector.Int64), vector.FloatValue(-9000.5)) {
		t.Error("hi=-9000.5 must prune a partition whose min is -9000")
	}
	if tab.ZonePrunes(0, 0, vector.NullValue(vector.Int64), vector.FloatValue(-8999.5)) {
		t.Error("hi=-8999.5 overlaps min=-9000, must not prune")
	}
}

// TestPruneRangesMixedTypeBounds is the regression test for block-level SMA
// pruning with a float bound on an int column: the old float-promoting
// comparison dropped blocks that still contained matches.
func TestPruneRangesMixedTypeBounds(t *testing.T) {
	tab := numTable(t, 1)
	n := 3*BlockSize + 17 // several blocks plus a partial tail
	for i := 0; i < n; i++ {
		if err := tab.AppendRow(0, []vector.Value{vector.IntValue(-int64(i)), vector.FloatValue(0)}); err != nil {
			t.Fatal(err)
		}
	}
	// Values are 0..-(n-1) descending, so block b spans
	// [-(end-1), -start]. A fractional lo bound must keep every block whose
	// max is above it.
	lo := vector.FloatValue(-(float64(BlockSize) + 0.5))
	ranges := tab.PruneRanges(0, 0, lo, vector.NullValue(vector.Float64), false)
	kept := 0
	for _, r := range ranges {
		kept += int(r.End - r.Start)
	}
	// Rows with value ≥ lo are i = 0..BlockSize (value -BlockSize > lo):
	// they live in blocks 0 and 1, so pruning must keep at least those rows
	// and must drop blocks 2 and 3.
	if kept < BlockSize+1 {
		t.Fatalf("pruning dropped matching rows: kept %d, need ≥ %d", kept, BlockSize+1)
	}
	if kept > 2*BlockSize {
		t.Fatalf("pruning kept non-matching blocks: kept %d rows", kept)
	}
	// Brute-force check: every surviving range only needs to be a superset
	// of matches; verify no match fell outside the kept ranges.
	inRanges := func(row int) bool {
		for _, r := range ranges {
			if uint64(row) >= r.Start && uint64(row) < r.End {
				return true
			}
		}
		return false
	}
	for i := 0; i <= BlockSize; i++ {
		if !inRanges(i) {
			t.Fatalf("matching row %d (value %d) pruned away", i, -i)
		}
	}
}
