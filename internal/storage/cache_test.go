package storage

import (
	"fmt"
	"path/filepath"
	"testing"

	"patchindex/internal/obs"
	"patchindex/internal/vector"
)

// newCachedTable builds a single-partition (a BIGINT, b VARCHAR) table with n
// rows, attaches a cache with the given budget, and flushes the partition to
// a segment file so evicted columns can reload.
func newCachedTable(t *testing.T, n int, budget int64) (*Table, *Cache) {
	t.Helper()
	tab := newTestTable(t, 1)
	a := vector.New(vector.Int64, n)
	b := vector.New(vector.String, n)
	for i := 0; i < n; i++ {
		a.AppendInt64(int64(i))
		b.AppendString(fmt.Sprintf("s%d", i%31))
	}
	if err := tab.AppendColumns(0, []*vector.Vector{a, b}); err != nil {
		t.Fatal(err)
	}
	c := NewCache(budget)
	c.SetMetrics(obs.NewRegistry())
	tab.AttachCache(c)
	if _, err := tab.FlushPartition(0, filepath.Join(t.TempDir(), "t.p0.seg"), nil); err != nil {
		t.Fatal(err)
	}
	return tab, c
}

func TestCacheEvictReloadRoundTrip(t *testing.T) {
	// Budget fits roughly one of the two columns, forcing churn.
	tab, c := newCachedTable(t, 4096, 40<<10)
	for pass := 0; pass < 3; pass++ {
		for col := 0; col < 2; col++ {
			v, release, err := tab.PinColumn(0, col)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil || v.Len() != 4096 {
				t.Fatalf("pass %d col %d: got %v", pass, col, v)
			}
			if col == 0 && v.I64[4095] != 4095 {
				t.Fatalf("reloaded data wrong: %d", v.I64[4095])
			}
			release()
		}
	}
	st := c.Stats()
	if st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("expected churn under a tight budget, stats: %+v", st)
	}
	if st.ResidentBytes > 2*st.BudgetBytes {
		t.Errorf("resident %d far over budget %d", st.ResidentBytes, st.BudgetBytes)
	}
}

func TestCachePinnedUnevictable(t *testing.T) {
	tab, c := newCachedTable(t, 4096, 40<<10)
	v, release, err := tab.PinColumn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pressure: fault the other column in; the pinned one must survive.
	v2, release2, err := tab.PinColumn(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	release2()
	_ = v2
	if tab.ColumnOnDisk(0, 0) {
		t.Fatal("pinned column was evicted")
	}
	if v.I64[0] != 0 || v.I64[4095] != 4095 {
		t.Fatal("pinned vector corrupted")
	}
	release()
	// After the last pin drops, the deferred sweep settles the budget.
	if st := c.Stats(); st.BudgetBytes > 0 && st.ResidentBytes > st.BudgetBytes {
		t.Errorf("budget debt not settled after release: %+v", st)
	}
	// Double release is a no-op, not a double-decrement.
	release()
	if st := c.Stats(); st.PinnedBytes != 0 {
		t.Errorf("pinned bytes %d after full release", st.PinnedBytes)
	}
}

func TestCacheDirtyUnevictable(t *testing.T) {
	tab, c := newCachedTable(t, 2048, 1)
	// Appending makes the partition dirty: disk no longer has these rows.
	a := vector.New(vector.Int64, 1)
	b := vector.New(vector.String, 1)
	a.AppendInt64(9999)
	b.AppendString("x")
	if err := tab.AppendColumns(0, []*vector.Vector{a, b}); err != nil {
		t.Fatal(err)
	}
	if tab.ColumnOnDisk(0, 0) || tab.ColumnOnDisk(0, 1) {
		t.Fatal("dirty partition columns must stay resident despite a 1-byte budget")
	}
	v, release, err := tab.PinColumn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2049 || v.I64[2048] != 9999 {
		t.Fatalf("dirty column wrong: len=%d", v.Len())
	}
	release()
	if c.Stats().Evictions != 0 {
		t.Errorf("evicted from a dirty partition")
	}
}

func TestCacheForgetOnRelease(t *testing.T) {
	tab, c := newCachedTable(t, 1024, 0)
	before := c.ResidentBytes()
	if before == 0 {
		t.Fatal("nothing charged after attach")
	}
	tab.ReleaseStorage()
	if got := c.ResidentBytes(); got != 0 {
		t.Errorf("resident %d after ReleaseStorage, want 0", got)
	}
}

func TestPinColumnNoCache(t *testing.T) {
	tab := newTestTable(t, 1)
	a := vector.New(vector.Int64, 8)
	b := vector.New(vector.String, 8)
	for i := 0; i < 8; i++ {
		a.AppendInt64(int64(i))
		b.AppendString("x")
	}
	if err := tab.AppendColumns(0, []*vector.Vector{a, b}); err != nil {
		t.Fatal(err)
	}
	v, release, err := tab.PinColumn(0, 0)
	if err != nil || v == nil || v.Len() != 8 {
		t.Fatalf("PinColumn without cache: %v, %v", v, err)
	}
	release()
}

// BenchmarkPinColumnDisabledPath measures the cache-disabled fast path —
// the per-column scan overhead every non-durable engine pays. The CI gate
// (TestPinColumnDisabledPathBudget) requires it under 50ns.
func BenchmarkPinColumnDisabledPath(b *testing.B) {
	tab, err := NewTable("t", NewSchema(Column{Name: "a", Typ: vector.Int64}), 1)
	if err != nil {
		b.Fatal(err)
	}
	v := vector.New(vector.Int64, 64)
	for i := 0; i < 64; i++ {
		v.AppendInt64(int64(i))
	}
	if err := tab.AppendColumns(0, []*vector.Vector{v}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec, release, err := tab.PinColumn(0, 0)
		if err != nil || vec == nil {
			b.Fatal("pin failed")
		}
		release()
	}
}

// TestPinColumnDisabledPathBudget is the <50ns acceptance gate on the
// disabled path. Skipped under the race detector, whose instrumentation
// would dominate the measurement.
func TestPinColumnDisabledPathBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews nanosecond-scale timing")
	}
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	res := testing.Benchmark(BenchmarkPinColumnDisabledPath)
	if ns := res.NsPerOp(); ns >= 50 {
		t.Errorf("cache-disabled PinColumn path: %dns/op, budget 50ns", ns)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("cache-disabled PinColumn path allocates %d objects/op, want 0", allocs)
	}
}
