// Partition segment files. One file holds one partition's columns in
// compressed form plus the always-resident metadata (block SMAs, zone map).
// Layout, little endian:
//
//	magic   uint32  0x50534547 ("PSEG")
//	ncols   uint32
//	nrows   uint64
//	metaLen uint32
//	meta    per column: SMAs + zone entry (see appendSMA)
//	dir     per column: off uint64, len uint32, crc uint32 (IEEE, payload)
//	payloads, each a compress.Encoded binary image
//
// Metadata decodes eagerly at open — planning and pruning never touch disk —
// while payloads read lazily via ReadColumn under the cache's direction.
// Files are immutable once written; a checkpoint writes a new generation and
// atomically renames it over a temp name, so a crash mid-write never damages
// the generation a manifest points to.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"patchindex/internal/compress"
	"patchindex/internal/vector"
)

const segMagic uint32 = 0x50534547

// payloadRef locates one column payload inside a segment file.
type payloadRef struct {
	off int64
	ln  uint32
	crc uint32
}

// PartStore is an open segment file: the disk half of a partition.
type PartStore struct {
	f    *os.File
	path string
	refs []payloadRef
}

// Path returns the segment file path.
func (s *PartStore) Path() string { return s.path }

// Close closes the underlying file.
func (s *PartStore) Close() error {
	if s == nil || s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// CompressedBytes returns the total payload bytes on disk.
func (s *PartStore) CompressedBytes() int64 {
	var total int64
	for _, r := range s.refs {
		total += int64(r.ln)
	}
	return total
}

// ReadColumn reads and parses one column's compressed payload.
func (s *PartStore) ReadColumn(col int) (*compress.Encoded, error) {
	if col < 0 || col >= len(s.refs) {
		return nil, fmt.Errorf("storage: segment %s: column %d out of range", s.path, col)
	}
	r := s.refs[col]
	buf := make([]byte, r.ln)
	if _, err := s.f.ReadAt(buf, r.off); err != nil {
		return nil, fmt.Errorf("storage: segment %s: read column %d: %w", s.path, col, err)
	}
	if crc32.ChecksumIEEE(buf) != r.crc {
		return nil, fmt.Errorf("storage: segment %s: column %d payload crc mismatch", s.path, col)
	}
	enc, _, err := compress.DecodeEncoded(buf)
	if err != nil {
		return nil, fmt.Errorf("storage: segment %s: column %d: %w", s.path, col, err)
	}
	return enc, nil
}

// appendSMA serializes one sma entry: flags byte (bit0 valid, bit1 hasNull),
// then min and max values when valid.
func appendSMA(buf []byte, s *sma) []byte {
	var flags byte
	if s.valid {
		flags |= 1
	}
	if s.hasNull {
		flags |= 2
	}
	buf = append(buf, flags)
	if s.valid {
		buf = vector.AppendValueBinary(buf, s.min)
		buf = vector.AppendValueBinary(buf, s.max)
	}
	return buf
}

func decodeSMA(data []byte) (sma, int, error) {
	if len(data) < 1 {
		return sma{}, 0, fmt.Errorf("truncated sma")
	}
	s := sma{valid: data[0]&1 != 0, hasNull: data[0]&2 != 0}
	pos := 1
	if s.valid {
		var err error
		var n int
		if s.min, n, err = vector.DecodeValue(data[pos:]); err != nil {
			return sma{}, 0, err
		}
		pos += n
		if s.max, n, err = vector.DecodeValue(data[pos:]); err != nil {
			return sma{}, 0, err
		}
		pos += n
	}
	return s, pos, nil
}

// WritePartitionFile encodes every column of p (all must be resident) and
// writes the segment atomically: temp file, fsync, rename, fsync directory.
// sortedHint[i] biases column i toward PFOR-DELTA (a PatchIndex or declared
// sort key proves it nearly sorted). It returns the store opened on the new
// file.
func WritePartitionFile(path string, p *Partition, sortedHint []bool) (*PartStore, error) {
	ncols := len(p.cols)
	// Meta block.
	meta := make([]byte, 0, 256)
	for _, cd := range p.cols {
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(cd.smas)))
		for i := range cd.smas {
			meta = appendSMA(meta, &cd.smas[i])
		}
		meta = appendSMA(meta, &cd.zone)
	}
	// Payloads.
	payloads := make([][]byte, ncols)
	for i, cd := range p.cols {
		vec := cd.vec.Load()
		if vec == nil {
			return nil, fmt.Errorf("storage: partition %d column %d not resident at flush", p.ID, i)
		}
		hint := i < len(sortedHint) && sortedHint[i]
		enc, err := compress.EncodeColumn(vec, hint)
		if err != nil {
			return nil, fmt.Errorf("storage: partition %d column %d: %w", p.ID, i, err)
		}
		payloads[i] = enc.AppendBinary(nil)
	}
	// Assemble.
	hdrLen := 4 + 4 + 8 + 4 + len(meta) + ncols*16
	buf := make([]byte, 0, hdrLen)
	buf = binary.LittleEndian.AppendUint32(buf, segMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ncols))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.nrows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	off := int64(hdrLen)
	for _, pl := range payloads {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pl)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(pl))
		off += int64(len(pl))
	}
	for _, pl := range payloads {
		buf = append(buf, pl...)
	}
	// Write atomically.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: segment write: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: segment write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: segment sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: segment close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("storage: segment rename: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	store, _, err := OpenPartitionFile(path)
	return store, err
}

// partMeta is the eagerly decoded metadata of a segment file.
type partMeta struct {
	nrows int
	smas  [][]sma
	zones []sma
}

// OpenPartitionFile opens a segment, decoding the metadata block eagerly and
// leaving payloads on disk.
func OpenPartitionFile(path string) (*PartStore, *partMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: segment open: %w", err)
	}
	var hdr [20]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: segment %s: header: %w", path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != segMagic {
		f.Close()
		return nil, nil, fmt.Errorf("storage: segment %s: bad magic", path)
	}
	ncols := int(binary.LittleEndian.Uint32(hdr[4:8]))
	nrows := int(binary.LittleEndian.Uint64(hdr[8:16]))
	metaLen := int(binary.LittleEndian.Uint32(hdr[16:20]))
	if ncols > 1<<16 || metaLen > 1<<30 {
		f.Close()
		return nil, nil, fmt.Errorf("storage: segment %s: implausible header", path)
	}
	rest := make([]byte, metaLen+ncols*16)
	if _, err := f.ReadAt(rest, 20); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("storage: segment %s: meta: %w", path, err)
	}
	meta := &partMeta{nrows: nrows, smas: make([][]sma, ncols), zones: make([]sma, ncols)}
	pos := 0
	for c := 0; c < ncols; c++ {
		if metaLen-pos < 4 {
			f.Close()
			return nil, nil, fmt.Errorf("storage: segment %s: truncated meta", path)
		}
		nsmas := int(binary.LittleEndian.Uint32(rest[pos:]))
		pos += 4
		if nsmas > nrows/BlockSize+1 {
			f.Close()
			return nil, nil, fmt.Errorf("storage: segment %s: implausible sma count", path)
		}
		meta.smas[c] = make([]sma, nsmas)
		for i := 0; i < nsmas; i++ {
			s, n, err := decodeSMA(rest[pos:metaLen])
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("storage: segment %s: %w", path, err)
			}
			meta.smas[c][i] = s
			pos += n
		}
		z, n, err := decodeSMA(rest[pos:metaLen])
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("storage: segment %s: %w", path, err)
		}
		meta.zones[c] = z
		pos += n
	}
	store := &PartStore{f: f, path: path, refs: make([]payloadRef, ncols)}
	dir := rest[metaLen:]
	for c := 0; c < ncols; c++ {
		store.refs[c] = payloadRef{
			off: int64(binary.LittleEndian.Uint64(dir[c*16:])),
			ln:  binary.LittleEndian.Uint32(dir[c*16+8:]),
			crc: binary.LittleEndian.Uint32(dir[c*16+12:]),
		}
	}
	return store, meta, nil
}
