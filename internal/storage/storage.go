// Package storage implements the in-memory columnar table storage of the
// engine: horizontally partitioned tables whose columns are stored as typed
// vectors, with per-block small materialized aggregates (min/max, null
// presence) that query planning turns into scan ranges.
//
// Creating a PatchIndex never changes how tuples are stored (a core design
// point of the paper), so this package knows nothing about patches; the
// PatchSelect operator applies them on top of scans.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"patchindex/internal/vector"
)

// BlockSize is the number of rows covered by one small materialized
// aggregate entry (Moerkotte-style min/max per block).
const BlockSize = 4096

// Column describes one column of a table schema.
type Column struct {
	Name string
	Typ  vector.Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from name/type pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// ColumnIndex returns the position of the named column or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Types returns the column types in schema order.
func (s *Schema) Types() []vector.Type {
	ts := make([]vector.Type, len(s.Columns))
	for i, c := range s.Columns {
		ts[i] = c.Typ
	}
	return ts
}

// sma is the small materialized aggregate of one column block.
type sma struct {
	min, max vector.Value
	hasNull  bool
	valid    bool // false until at least one non-null value was seen
}

// columnData holds the values of one column inside one partition, together
// with its block SMAs and the partition-level zone map. The decoded payload
// is an atomic pointer because, for cache-attached tables, eviction unlinks
// it concurrently with lock-free readers: a reader that loaded the pointer
// before the unlink keeps a valid (immutable, GC-protected) vector, it just
// stops being charged against the budget. SMAs and the zone map are never
// evicted — planning stays I/O-free.
type columnData struct {
	vec  atomic.Pointer[vector.Vector]
	smas []sma
	zone sma // partition-level min/max: the zone map entry

	// Cache state. pins/inRing/bytes are guarded by the owning Cache's
	// mutex; refbit is atomic so the resident fast path can mark recency
	// without taking it.
	pins   int
	inRing bool
	bytes  int64
	refbit atomic.Bool
}

func (c *columnData) updateSMA(row int) {
	blk := row / BlockSize
	for len(c.smas) <= blk {
		c.smas = append(c.smas, sma{})
	}
	s := &c.smas[blk]
	vec := c.vec.Load()
	if vec.IsNull(row) {
		s.hasNull = true
		c.zone.hasNull = true
		return
	}
	v := vec.Value(row)
	if !s.valid {
		s.min, s.max, s.valid = v, v, true
	} else {
		if v.Compare(s.min) < 0 {
			s.min = v
		}
		if v.Compare(s.max) > 0 {
			s.max = v
		}
	}
	z := &c.zone
	if !z.valid {
		z.min, z.max, z.valid = v, v, true
		return
	}
	if v.Compare(z.min) < 0 {
		z.min = v
	}
	if v.Compare(z.max) > 0 {
		z.max = v
	}
}

// Partition is one horizontal slice of a table. Row ids inside a partition
// are dense local offsets starting at zero.
type Partition struct {
	ID    int
	tab   *Table
	cols  []*columnData
	nrows int
	// staleRows counts rows appended since the last zone-map recompute.
	// Appends widen zone entries in place (they stay correct) but never
	// re-derive them, so a partition with many post-recompute rows is a
	// drift signal: its zones may be far looser than a fresh build's.
	staleRows int

	// Disk state, meaningful only for cache-attached tables. dirty and
	// store are guarded by the cache mutex: dirty partitions (rows not yet
	// checkpointed to store) are unevictable.
	dirty bool
	store *PartStore
}

// NumRows returns the number of rows stored in the partition.
func (p *Partition) NumRows() int { return p.nrows }

// Column returns the full value vector of column col (shared, do not
// mutate), reloading it from the partition's segment file if it was evicted.
// Callers that scan concurrently with cache pressure should prefer
// Table.PinColumn, which keeps the payload charged and unevictable for the
// scan's lifetime; Column is the path for builders and maintainers running
// under the engine's exclusive latches. It panics if a backing segment is
// unreadable — on-disk corruption of checkpointed data is not recoverable
// mid-operation.
func (p *Partition) Column(col int) *vector.Vector {
	cd := p.cols[col]
	if v := cd.vec.Load(); v != nil {
		if p.tab != nil && p.tab.cache != nil {
			cd.refbit.Store(true)
		}
		return v
	}
	v, err := p.tab.cache.touch(p, col)
	if err != nil {
		panic(fmt.Sprintf("storage: reload %s partition %d column %d: %v", p.tab.name, p.ID, col, err))
	}
	return v
}

// ScanRange is a half-open row-id interval [Start,End) within a partition.
type ScanRange struct {
	Start, End uint64
}

// Len returns the number of rows in the range.
func (r ScanRange) Len() uint64 { return r.End - r.Start }

// versionCounter issues globally unique table version stamps, so a table
// dropped and recreated under the same name can never alias an older
// version (see Table.Version).
var versionCounter atomic.Uint64

// Table is a partitioned columnar table.
type Table struct {
	mu         sync.RWMutex
	name       string
	schema     *Schema
	partitions []*Partition
	sortKey    string // declared (exact) sort key, "" if none
	// version is a content version stamp: re-issued from versionCounter on
	// creation and on every append. The serving result cache keys cached
	// result sets on the version vector of all referenced tables, so any
	// row change invalidates them without scanning.
	version atomic.Uint64
	// cache, when non-nil, budgets this table's decoded payloads (durable
	// mode). nil means pure in-memory: payloads are plain heap vectors and
	// every residency fast path short-circuits.
	cache *Cache
}

// NewTable creates an empty table with the given number of partitions.
func NewTable(name string, schema *Schema, numPartitions int) (*Table, error) {
	if numPartitions < 1 {
		return nil, fmt.Errorf("storage: table %s: need at least 1 partition, got %d", name, numPartitions)
	}
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("storage: table %s: schema has no columns", name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if seen[c.Name] {
			return nil, fmt.Errorf("storage: table %s: duplicate column %s", name, c.Name)
		}
		seen[c.Name] = true
	}
	t := &Table{name: name, schema: schema}
	t.version.Store(versionCounter.Add(1))
	for i := 0; i < numPartitions; i++ {
		p := &Partition{ID: i, tab: t, cols: make([]*columnData, len(schema.Columns))}
		for c := range schema.Columns {
			cd := &columnData{}
			cd.vec.Store(vector.New(schema.Columns[c].Typ, 0))
			p.cols[c] = cd
		}
		t.partitions = append(t.partitions, p)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Version returns the table's content version stamp. It changes on every
// append (writers hold the table's exclusive latch in the engine, so a
// reader holding the shared latch sees a stable value covering exactly the
// rows it can scan). Stamps are globally unique across all tables.
func (t *Table) Version() uint64 { return t.version.Load() }

// NumPartitions returns the partition count.
func (t *Table) NumPartitions() int { return len(t.partitions) }

// Partition returns partition i.
func (t *Table) Partition(i int) *Partition { return t.partitions[i] }

// SetSortKey declares that the table is exactly sorted on the named column
// (within each partition). The planner uses this to infer ordering.
func (t *Table) SetSortKey(col string) error {
	if t.schema.ColumnIndex(col) < 0 {
		return fmt.Errorf("storage: table %s: unknown sort key column %s", t.name, col)
	}
	t.sortKey = col
	return nil
}

// SortKey returns the declared sort key column name, or "".
func (t *Table) SortKey() string { return t.sortKey }

// NumRows returns the total number of rows across partitions.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, p := range t.partitions {
		n += p.nrows
	}
	return n
}

// AppendRow appends one row to the given partition. vals must match the
// schema (Value.Null for NULLs). Used by loaders and tests; bulk ingest goes
// through AppendBatch.
func (t *Table) AppendRow(part int, vals []vector.Value) error {
	if part < 0 || part >= len(t.partitions) {
		return fmt.Errorf("storage: table %s: partition %d out of range", t.name, part)
	}
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("storage: table %s: row has %d values, schema has %d columns", t.name, len(vals), len(t.schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.partitions[part]
	if err := t.beginWrite(p); err != nil {
		return err
	}
	for c, v := range vals {
		if err := p.cols[c].vec.Load().AppendValue(v); err != nil {
			return fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema.Columns[c].Name, err)
		}
		p.cols[c].updateSMA(p.nrows)
	}
	p.nrows++
	p.staleRows++
	t.version.Store(versionCounter.Add(1))
	t.endWrite(p)
	return nil
}

// AppendBatch appends a batch of rows to the given partition.
func (t *Table) AppendBatch(part int, b *vector.Batch) error {
	if part < 0 || part >= len(t.partitions) {
		return fmt.Errorf("storage: table %s: partition %d out of range", t.name, part)
	}
	if len(b.Vecs) != len(t.schema.Columns) {
		return fmt.Errorf("storage: table %s: batch has %d columns, schema has %d", t.name, len(b.Vecs), len(t.schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.partitions[part]
	n := b.Len()
	if err := t.beginWrite(p); err != nil {
		return err
	}
	for c, src := range b.Vecs {
		dst := p.cols[c]
		vec := dst.vec.Load()
		for i := 0; i < n; i++ {
			vec.Append(src, i)
			dst.updateSMA(p.nrows + i)
		}
	}
	p.nrows += n
	p.staleRows += n
	t.version.Store(versionCounter.Add(1))
	t.endWrite(p)
	return nil
}

// AppendColumns bulk-appends whole column vectors (all of equal length) to a
// partition. This is the fast path used by the data generators.
func (t *Table) AppendColumns(part int, cols []*vector.Vector) error {
	if part < 0 || part >= len(t.partitions) {
		return fmt.Errorf("storage: table %s: partition %d out of range", t.name, part)
	}
	if len(cols) != len(t.schema.Columns) {
		return fmt.Errorf("storage: table %s: got %d columns, schema has %d", t.name, len(cols), len(t.schema.Columns))
	}
	n := cols[0].Len()
	for c, v := range cols {
		if v.Len() != n {
			return fmt.Errorf("storage: table %s: column %d has %d rows, expected %d", t.name, c, v.Len(), n)
		}
		if v.Typ != t.schema.Columns[c].Typ {
			return fmt.Errorf("storage: table %s: column %s type mismatch: %s vs %s", t.name, t.schema.Columns[c].Name, v.Typ, t.schema.Columns[c].Typ)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.partitions[part]
	if err := t.beginWrite(p); err != nil {
		return err
	}
	for c, v := range cols {
		dst := p.cols[c]
		vec := dst.vec.Load()
		for i := 0; i < n; i++ {
			vec.Append(v, i)
			dst.updateSMA(p.nrows + i)
		}
	}
	p.nrows += n
	p.staleRows += n
	t.version.Store(versionCounter.Add(1))
	t.endWrite(p)
	return nil
}

// ZoneStaleness reports how much the table's zone maps have drifted from a
// fresh build: the total rows appended since the last RecomputeZones and
// the number of partitions with any such rows. A second degradation signal
// next to the patch ratio.
func (t *Table) ZoneStaleness() (staleRows, stalePartitions int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, p := range t.partitions {
		if p.staleRows > 0 {
			staleRows += p.staleRows
			stalePartitions++
		}
	}
	return staleRows, stalePartitions
}

// RecomputeZones re-derives every partition's zone map entries from the
// block SMAs and resets the staleness counters — called after an index
// rebuild so the drift signal restarts from a clean baseline.
func (t *Table) RecomputeZones() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.partitions {
		for _, c := range p.cols {
			z := sma{}
			for _, s := range c.smas {
				if s.hasNull {
					z.hasNull = true
				}
				if !s.valid {
					continue
				}
				if !z.valid {
					z.min, z.max, z.valid = s.min, s.max, true
					continue
				}
				if s.min.Compare(z.min) < 0 {
					z.min = s.min
				}
				if s.max.Compare(z.max) > 0 {
					z.max = s.max
				}
			}
			c.zone = z
		}
		p.staleRows = 0
	}
}

// PruneRanges computes the scan ranges of a partition that can contain values
// of column col within [lo,hi] (inclusive; a Null bound means unbounded on
// that side). Blocks whose SMA proves emptiness are pruned; adjacent
// surviving blocks are coalesced. keepNulls keeps blocks that contain NULLs
// even if their min/max is outside the bounds.
func (t *Table) PruneRanges(part, col int, lo, hi vector.Value, keepNulls bool) []ScanRange {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := t.partitions[part]
	cd := p.cols[col]
	var out []ScanRange
	total := uint64(p.nrows)
	for blk := 0; blk*BlockSize < p.nrows; blk++ {
		start := uint64(blk * BlockSize)
		end := start + BlockSize
		if end > total {
			end = total
		}
		keep := true
		if blk < len(cd.smas) {
			s := cd.smas[blk]
			if s.valid {
				// CompareNumeric, not Value.Compare: a float literal bound
				// against an integer column must compare exactly (a plain
				// Compare would read the literal's zero-valued integer slot).
				if !lo.Null && vector.CompareNumeric(s.max, lo) < 0 {
					keep = false
				}
				if !hi.Null && vector.CompareNumeric(s.min, hi) > 0 {
					keep = false
				}
			} else {
				// All-NULL block: no value can match a bound.
				keep = false
			}
			if !keep && keepNulls && s.hasNull {
				keep = true
			}
		}
		if !keep {
			continue
		}
		if n := len(out); n > 0 && out[n-1].End == start {
			out[n-1].End = end
		} else {
			out = append(out, ScanRange{Start: start, End: end})
		}
	}
	return out
}

// ZoneMapEntry is the partition-level min/max summary of one column — the
// zone map the planner consults to skip whole partitions before any morsel
// is scheduled. Entries are maintained on every append and, because recovery
// replays the WAL through the ordinary append path, rebuilt on replay.
type ZoneMapEntry struct {
	Min, Max vector.Value // valid only if Valid
	HasNull  bool         // the column holds at least one NULL in this partition
	Valid    bool         // at least one non-NULL value was seen
	Rows     int          // rows stored in the partition
}

// ZoneMap returns the zone map entry for column col of partition part.
func (t *Table) ZoneMap(part, col int) ZoneMapEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := t.partitions[part]
	z := p.cols[col].zone
	return ZoneMapEntry{Min: z.min, Max: z.max, HasNull: z.hasNull, Valid: z.valid, Rows: p.nrows}
}

// ZonePrunes reports whether the zone map proves that no row of partition
// part has a value of column col inside [lo,hi] (inclusive; Null bounds are
// unbounded). Mixed int/float bounds compare exactly via CompareNumeric.
// Empty partitions report false — scanning them is already free, and keeping
// them preserves plan shape.
func (t *Table) ZonePrunes(part, col int, lo, hi vector.Value) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := t.partitions[part]
	if p.nrows == 0 {
		return false
	}
	z := p.cols[col].zone
	if !z.valid {
		// Every row is NULL in this column: no bound can match.
		return true
	}
	if !lo.Null && vector.CompareNumeric(z.max, lo) < 0 {
		return true
	}
	if !hi.Null && vector.CompareNumeric(z.min, hi) > 0 {
		return true
	}
	return false
}

// FullRange returns the single scan range covering all rows of a partition.
func (t *Table) FullRange(part int) []ScanRange {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return []ScanRange{{Start: 0, End: uint64(t.partitions[part].nrows)}}
}

// AttachCache puts the table's decoded payloads under the cache's budget.
// Already-resident columns are charged immediately; partitions without a
// backing segment stay dirty (unevictable) until the first checkpoint writes
// them out.
func (t *Table) AttachCache(c *Cache) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cache = c
	for _, p := range t.partitions {
		c.mu.Lock()
		p.dirty = p.store == nil
		c.mu.Unlock()
		for col := range p.cols {
			c.register(p, col)
		}
	}
}

// CacheAttached reports whether the table's payloads are cache-managed.
func (t *Table) CacheAttached() bool { return t.cache != nil }

// PinColumn returns the resident vector of (part, col) pinned against
// eviction; the caller must run the release func when the scan is done. For
// cache-less tables this is a single atomic load — the disabled path stays
// nanosecond-cheap.
func (t *Table) PinColumn(part, col int) (*vector.Vector, func(), error) {
	p := t.partitions[part]
	if t.cache == nil {
		return p.cols[col].vec.Load(), noopRelease, nil
	}
	return t.cache.pin(p, col)
}

// ColumnOnDisk reports whether (part, col) currently has no decoded payload
// in memory — a cold read would hit the segment file. The scan planner uses
// it to choose between pinning through the cache and streaming a range
// decode that bypasses it.
func (t *Table) ColumnOnDisk(part, col int) bool {
	return t.partitions[part].cols[col].vec.Load() == nil
}

// PartitionClean reports whether the partition's segment file covers all its
// rows (no appends since the last checkpoint). Only clean partitions may be
// scanned from their compressed image.
func (t *Table) PartitionClean(part int) bool {
	if t.cache == nil {
		return false
	}
	p := t.partitions[part]
	t.cache.mu.Lock()
	defer t.cache.mu.Unlock()
	return !p.dirty && p.store != nil
}

// OpenSegment returns the partition's segment store for direct compressed
// reads, or nil if none. Combined with PartitionClean, selective scans use
// this to decode just the pruned ranges without charging the cache.
func (t *Table) OpenSegment(part int) *PartStore {
	p := t.partitions[part]
	if t.cache == nil {
		return nil
	}
	t.cache.mu.Lock()
	defer t.cache.mu.Unlock()
	if p.dirty {
		return nil
	}
	return p.store
}

// beginWrite prepares a partition for appends: all columns resident and the
// partition marked dirty so the clock sweep leaves it alone. No-op without a
// cache. Caller holds t.mu exclusively.
func (t *Table) beginWrite(p *Partition) error {
	c := t.cache
	if c == nil {
		return nil
	}
	c.mu.Lock()
	p.dirty = true
	for col := range p.cols {
		if p.cols[col].vec.Load() == nil {
			if err := c.loadLocked(p, col); err != nil {
				c.mu.Unlock()
				return err
			}
		}
	}
	c.mu.Unlock()
	return nil
}

// endWrite recharges the grown payloads after an append. Caller holds t.mu
// exclusively.
func (t *Table) endWrite(p *Partition) {
	if t.cache == nil {
		return
	}
	for col := range p.cols {
		t.cache.register(p, col)
	}
}

// Dirty reports whether the partition has rows its segment file doesn't.
func (t *Table) Dirty(part int) bool {
	if t.cache == nil {
		return true
	}
	t.cache.mu.Lock()
	defer t.cache.mu.Unlock()
	return t.partitions[part].dirty || t.partitions[part].store == nil
}

// FlushPartition compresses the partition into a new segment file at path
// (atomically) and swaps it in as the backing store, clearing the dirty
// flag. sortedHint marks columns a PatchIndex or sort key proves nearly
// sorted. Returns the on-disk payload size. The table must be cache-attached
// and the caller must hold the engine-level exclusive latch.
func (t *Table) FlushPartition(part int, path string, sortedHint []bool) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.partitions[part]
	c := t.cache
	if c == nil {
		return 0, fmt.Errorf("storage: table %s is not cache-attached", t.name)
	}
	c.mu.Lock()
	for col := range p.cols {
		if p.cols[col].vec.Load() == nil {
			if err := c.loadLocked(p, col); err != nil {
				c.mu.Unlock()
				return 0, err
			}
		}
	}
	c.mu.Unlock()
	store, err := WritePartitionFile(path, p, sortedHint)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	old := p.store
	p.store = store
	p.dirty = false
	c.mu.Unlock()
	old.Close()
	return store.CompressedBytes(), nil
}

// SegmentPath returns the partition's current segment file path ("" if
// none) — recorded in checkpoint manifests.
func (t *Table) SegmentPath(part int) string {
	if t.cache == nil {
		return ""
	}
	t.cache.mu.Lock()
	defer t.cache.mu.Unlock()
	if s := t.partitions[part].store; s != nil {
		return s.path
	}
	return ""
}

// CompressedBytes returns the total on-disk payload bytes across partitions.
func (t *Table) CompressedBytes() int64 {
	if t.cache == nil {
		return 0
	}
	t.cache.mu.Lock()
	defer t.cache.mu.Unlock()
	var total int64
	for _, p := range t.partitions {
		if p.store != nil {
			total += p.store.CompressedBytes()
		}
	}
	return total
}

// RawBytes returns the decoded in-memory size the table would occupy fully
// resident: the sum of resident payload sizes plus, for evicted columns,
// the 8-byte-per-row estimate.
func (t *Table) RawBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	for _, p := range t.partitions {
		for _, cd := range p.cols {
			if v := cd.vec.Load(); v != nil {
				total += v.ByteSize()
			} else {
				total += int64(8 * p.nrows)
			}
		}
	}
	return total
}

// ReleaseStorage detaches the table from its cache (dropping all charges)
// and closes its segment files. Called on table drop and engine close; the
// files themselves are removed by the next checkpoint's orphan sweep.
func (t *Table) ReleaseStorage() {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cache
	if c == nil {
		return
	}
	for _, p := range t.partitions {
		c.forget(p)
		c.mu.Lock()
		store := p.store
		p.store = nil
		c.mu.Unlock()
		store.Close()
	}
	t.cache = nil
}

// LoadTable reconstructs a table from its checkpointed segment files, one
// per partition, leaving every payload on disk: metadata (row counts, SMAs,
// zone maps) loads eagerly, vectors fault in through the cache on first
// touch. This is what makes restart-after-checkpoint fast — no WAL replay of
// checkpointed history and no payload decode until a query needs one.
func LoadTable(name string, schema *Schema, sortKey string, partPaths []string, c *Cache) (*Table, error) {
	if c == nil {
		return nil, fmt.Errorf("storage: LoadTable %s: nil cache", name)
	}
	t := &Table{name: name, schema: schema, sortKey: sortKey, cache: c}
	t.version.Store(versionCounter.Add(1))
	for i, path := range partPaths {
		store, meta, err := OpenPartitionFile(path)
		if err != nil {
			return nil, err
		}
		if len(meta.smas) != len(schema.Columns) {
			store.Close()
			return nil, fmt.Errorf("storage: segment %s has %d columns, schema has %d", path, len(meta.smas), len(schema.Columns))
		}
		p := &Partition{ID: i, tab: t, cols: make([]*columnData, len(schema.Columns)), nrows: meta.nrows, store: store}
		for col := range schema.Columns {
			p.cols[col] = &columnData{smas: meta.smas[col], zone: meta.zones[col]}
		}
		t.partitions = append(t.partitions, p)
	}
	return t, nil
}
