// Package storage implements the in-memory columnar table storage of the
// engine: horizontally partitioned tables whose columns are stored as typed
// vectors, with per-block small materialized aggregates (min/max, null
// presence) that query planning turns into scan ranges.
//
// Creating a PatchIndex never changes how tuples are stored (a core design
// point of the paper), so this package knows nothing about patches; the
// PatchSelect operator applies them on top of scans.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"patchindex/internal/vector"
)

// BlockSize is the number of rows covered by one small materialized
// aggregate entry (Moerkotte-style min/max per block).
const BlockSize = 4096

// Column describes one column of a table schema.
type Column struct {
	Name string
	Typ  vector.Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from name/type pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// ColumnIndex returns the position of the named column or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Types returns the column types in schema order.
func (s *Schema) Types() []vector.Type {
	ts := make([]vector.Type, len(s.Columns))
	for i, c := range s.Columns {
		ts[i] = c.Typ
	}
	return ts
}

// sma is the small materialized aggregate of one column block.
type sma struct {
	min, max vector.Value
	hasNull  bool
	valid    bool // false until at least one non-null value was seen
}

// columnData holds the values of one column inside one partition, together
// with its block SMAs and the partition-level zone map.
type columnData struct {
	vec  *vector.Vector
	smas []sma
	zone sma // partition-level min/max: the zone map entry
}

func (c *columnData) updateSMA(row int) {
	blk := row / BlockSize
	for len(c.smas) <= blk {
		c.smas = append(c.smas, sma{})
	}
	s := &c.smas[blk]
	if c.vec.IsNull(row) {
		s.hasNull = true
		c.zone.hasNull = true
		return
	}
	v := c.vec.Value(row)
	if !s.valid {
		s.min, s.max, s.valid = v, v, true
	} else {
		if v.Compare(s.min) < 0 {
			s.min = v
		}
		if v.Compare(s.max) > 0 {
			s.max = v
		}
	}
	z := &c.zone
	if !z.valid {
		z.min, z.max, z.valid = v, v, true
		return
	}
	if v.Compare(z.min) < 0 {
		z.min = v
	}
	if v.Compare(z.max) > 0 {
		z.max = v
	}
}

// Partition is one horizontal slice of a table. Row ids inside a partition
// are dense local offsets starting at zero.
type Partition struct {
	ID    int
	cols  []*columnData
	nrows int
	// staleRows counts rows appended since the last zone-map recompute.
	// Appends widen zone entries in place (they stay correct) but never
	// re-derive them, so a partition with many post-recompute rows is a
	// drift signal: its zones may be far looser than a fresh build's.
	staleRows int
}

// NumRows returns the number of rows stored in the partition.
func (p *Partition) NumRows() int { return p.nrows }

// Column returns the full value vector of column col (shared, do not mutate).
func (p *Partition) Column(col int) *vector.Vector { return p.cols[col].vec }

// ScanRange is a half-open row-id interval [Start,End) within a partition.
type ScanRange struct {
	Start, End uint64
}

// Len returns the number of rows in the range.
func (r ScanRange) Len() uint64 { return r.End - r.Start }

// versionCounter issues globally unique table version stamps, so a table
// dropped and recreated under the same name can never alias an older
// version (see Table.Version).
var versionCounter atomic.Uint64

// Table is a partitioned columnar table.
type Table struct {
	mu         sync.RWMutex
	name       string
	schema     *Schema
	partitions []*Partition
	sortKey    string // declared (exact) sort key, "" if none
	// version is a content version stamp: re-issued from versionCounter on
	// creation and on every append. The serving result cache keys cached
	// result sets on the version vector of all referenced tables, so any
	// row change invalidates them without scanning.
	version atomic.Uint64
}

// NewTable creates an empty table with the given number of partitions.
func NewTable(name string, schema *Schema, numPartitions int) (*Table, error) {
	if numPartitions < 1 {
		return nil, fmt.Errorf("storage: table %s: need at least 1 partition, got %d", name, numPartitions)
	}
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("storage: table %s: schema has no columns", name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if seen[c.Name] {
			return nil, fmt.Errorf("storage: table %s: duplicate column %s", name, c.Name)
		}
		seen[c.Name] = true
	}
	t := &Table{name: name, schema: schema}
	t.version.Store(versionCounter.Add(1))
	for i := 0; i < numPartitions; i++ {
		p := &Partition{ID: i, cols: make([]*columnData, len(schema.Columns))}
		for c := range schema.Columns {
			p.cols[c] = &columnData{vec: vector.New(schema.Columns[c].Typ, 0)}
		}
		t.partitions = append(t.partitions, p)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Version returns the table's content version stamp. It changes on every
// append (writers hold the table's exclusive latch in the engine, so a
// reader holding the shared latch sees a stable value covering exactly the
// rows it can scan). Stamps are globally unique across all tables.
func (t *Table) Version() uint64 { return t.version.Load() }

// NumPartitions returns the partition count.
func (t *Table) NumPartitions() int { return len(t.partitions) }

// Partition returns partition i.
func (t *Table) Partition(i int) *Partition { return t.partitions[i] }

// SetSortKey declares that the table is exactly sorted on the named column
// (within each partition). The planner uses this to infer ordering.
func (t *Table) SetSortKey(col string) error {
	if t.schema.ColumnIndex(col) < 0 {
		return fmt.Errorf("storage: table %s: unknown sort key column %s", t.name, col)
	}
	t.sortKey = col
	return nil
}

// SortKey returns the declared sort key column name, or "".
func (t *Table) SortKey() string { return t.sortKey }

// NumRows returns the total number of rows across partitions.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, p := range t.partitions {
		n += p.nrows
	}
	return n
}

// AppendRow appends one row to the given partition. vals must match the
// schema (Value.Null for NULLs). Used by loaders and tests; bulk ingest goes
// through AppendBatch.
func (t *Table) AppendRow(part int, vals []vector.Value) error {
	if part < 0 || part >= len(t.partitions) {
		return fmt.Errorf("storage: table %s: partition %d out of range", t.name, part)
	}
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("storage: table %s: row has %d values, schema has %d columns", t.name, len(vals), len(t.schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.partitions[part]
	for c, v := range vals {
		if err := p.cols[c].vec.AppendValue(v); err != nil {
			return fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema.Columns[c].Name, err)
		}
		p.cols[c].updateSMA(p.nrows)
	}
	p.nrows++
	p.staleRows++
	t.version.Store(versionCounter.Add(1))
	return nil
}

// AppendBatch appends a batch of rows to the given partition.
func (t *Table) AppendBatch(part int, b *vector.Batch) error {
	if part < 0 || part >= len(t.partitions) {
		return fmt.Errorf("storage: table %s: partition %d out of range", t.name, part)
	}
	if len(b.Vecs) != len(t.schema.Columns) {
		return fmt.Errorf("storage: table %s: batch has %d columns, schema has %d", t.name, len(b.Vecs), len(t.schema.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.partitions[part]
	n := b.Len()
	for c, src := range b.Vecs {
		dst := p.cols[c]
		for i := 0; i < n; i++ {
			dst.vec.Append(src, i)
			dst.updateSMA(p.nrows + i)
		}
	}
	p.nrows += n
	p.staleRows += n
	t.version.Store(versionCounter.Add(1))
	return nil
}

// AppendColumns bulk-appends whole column vectors (all of equal length) to a
// partition. This is the fast path used by the data generators.
func (t *Table) AppendColumns(part int, cols []*vector.Vector) error {
	if part < 0 || part >= len(t.partitions) {
		return fmt.Errorf("storage: table %s: partition %d out of range", t.name, part)
	}
	if len(cols) != len(t.schema.Columns) {
		return fmt.Errorf("storage: table %s: got %d columns, schema has %d", t.name, len(cols), len(t.schema.Columns))
	}
	n := cols[0].Len()
	for c, v := range cols {
		if v.Len() != n {
			return fmt.Errorf("storage: table %s: column %d has %d rows, expected %d", t.name, c, v.Len(), n)
		}
		if v.Typ != t.schema.Columns[c].Typ {
			return fmt.Errorf("storage: table %s: column %s type mismatch: %s vs %s", t.name, t.schema.Columns[c].Name, v.Typ, t.schema.Columns[c].Typ)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.partitions[part]
	for c, v := range cols {
		dst := p.cols[c]
		for i := 0; i < n; i++ {
			dst.vec.Append(v, i)
			dst.updateSMA(p.nrows + i)
		}
	}
	p.nrows += n
	p.staleRows += n
	t.version.Store(versionCounter.Add(1))
	return nil
}

// ZoneStaleness reports how much the table's zone maps have drifted from a
// fresh build: the total rows appended since the last RecomputeZones and
// the number of partitions with any such rows. A second degradation signal
// next to the patch ratio.
func (t *Table) ZoneStaleness() (staleRows, stalePartitions int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, p := range t.partitions {
		if p.staleRows > 0 {
			staleRows += p.staleRows
			stalePartitions++
		}
	}
	return staleRows, stalePartitions
}

// RecomputeZones re-derives every partition's zone map entries from the
// block SMAs and resets the staleness counters — called after an index
// rebuild so the drift signal restarts from a clean baseline.
func (t *Table) RecomputeZones() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.partitions {
		for _, c := range p.cols {
			z := sma{}
			for _, s := range c.smas {
				if s.hasNull {
					z.hasNull = true
				}
				if !s.valid {
					continue
				}
				if !z.valid {
					z.min, z.max, z.valid = s.min, s.max, true
					continue
				}
				if s.min.Compare(z.min) < 0 {
					z.min = s.min
				}
				if s.max.Compare(z.max) > 0 {
					z.max = s.max
				}
			}
			c.zone = z
		}
		p.staleRows = 0
	}
}

// PruneRanges computes the scan ranges of a partition that can contain values
// of column col within [lo,hi] (inclusive; a Null bound means unbounded on
// that side). Blocks whose SMA proves emptiness are pruned; adjacent
// surviving blocks are coalesced. keepNulls keeps blocks that contain NULLs
// even if their min/max is outside the bounds.
func (t *Table) PruneRanges(part, col int, lo, hi vector.Value, keepNulls bool) []ScanRange {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := t.partitions[part]
	cd := p.cols[col]
	var out []ScanRange
	total := uint64(p.nrows)
	for blk := 0; blk*BlockSize < p.nrows; blk++ {
		start := uint64(blk * BlockSize)
		end := start + BlockSize
		if end > total {
			end = total
		}
		keep := true
		if blk < len(cd.smas) {
			s := cd.smas[blk]
			if s.valid {
				// CompareNumeric, not Value.Compare: a float literal bound
				// against an integer column must compare exactly (a plain
				// Compare would read the literal's zero-valued integer slot).
				if !lo.Null && vector.CompareNumeric(s.max, lo) < 0 {
					keep = false
				}
				if !hi.Null && vector.CompareNumeric(s.min, hi) > 0 {
					keep = false
				}
			} else {
				// All-NULL block: no value can match a bound.
				keep = false
			}
			if !keep && keepNulls && s.hasNull {
				keep = true
			}
		}
		if !keep {
			continue
		}
		if n := len(out); n > 0 && out[n-1].End == start {
			out[n-1].End = end
		} else {
			out = append(out, ScanRange{Start: start, End: end})
		}
	}
	return out
}

// ZoneMapEntry is the partition-level min/max summary of one column — the
// zone map the planner consults to skip whole partitions before any morsel
// is scheduled. Entries are maintained on every append and, because recovery
// replays the WAL through the ordinary append path, rebuilt on replay.
type ZoneMapEntry struct {
	Min, Max vector.Value // valid only if Valid
	HasNull  bool         // the column holds at least one NULL in this partition
	Valid    bool         // at least one non-NULL value was seen
	Rows     int          // rows stored in the partition
}

// ZoneMap returns the zone map entry for column col of partition part.
func (t *Table) ZoneMap(part, col int) ZoneMapEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := t.partitions[part]
	z := p.cols[col].zone
	return ZoneMapEntry{Min: z.min, Max: z.max, HasNull: z.hasNull, Valid: z.valid, Rows: p.nrows}
}

// ZonePrunes reports whether the zone map proves that no row of partition
// part has a value of column col inside [lo,hi] (inclusive; Null bounds are
// unbounded). Mixed int/float bounds compare exactly via CompareNumeric.
// Empty partitions report false — scanning them is already free, and keeping
// them preserves plan shape.
func (t *Table) ZonePrunes(part, col int, lo, hi vector.Value) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p := t.partitions[part]
	if p.nrows == 0 {
		return false
	}
	z := p.cols[col].zone
	if !z.valid {
		// Every row is NULL in this column: no bound can match.
		return true
	}
	if !lo.Null && vector.CompareNumeric(z.max, lo) < 0 {
		return true
	}
	if !hi.Null && vector.CompareNumeric(z.min, hi) > 0 {
		return true
	}
	return false
}

// FullRange returns the single scan range covering all rows of a partition.
func (t *Table) FullRange(part int) []ScanRange {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return []ScanRange{{Start: 0, End: uint64(t.partitions[part].nrows)}}
}
