package storage

import (
	"math/rand"
	"testing"

	"patchindex/internal/vector"
)

func newTestTable(t *testing.T, parts int) *Table {
	t.Helper()
	tab, err := NewTable("t", NewSchema(
		Column{Name: "a", Typ: vector.Int64},
		Column{Name: "b", Typ: vector.String},
	), parts)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSchemaColumnIndex(t *testing.T) {
	s := NewSchema(Column{Name: "x", Typ: vector.Int64}, Column{Name: "y", Typ: vector.Float64})
	if s.ColumnIndex("x") != 0 || s.ColumnIndex("y") != 1 || s.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex wrong")
	}
	types := s.Types()
	if len(types) != 2 || types[0] != vector.Int64 || types[1] != vector.Float64 {
		t.Errorf("Types() = %v", types)
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t", NewSchema(Column{Name: "a", Typ: vector.Int64}), 0); err == nil {
		t.Error("zero partitions must fail")
	}
	if _, err := NewTable("t", NewSchema(), 1); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewTable("t", NewSchema(
		Column{Name: "a", Typ: vector.Int64},
		Column{Name: "a", Typ: vector.Int64},
	), 1); err == nil {
		t.Error("duplicate column names must fail")
	}
}

func TestAppendRow(t *testing.T) {
	tab := newTestTable(t, 2)
	if err := tab.AppendRow(0, []vector.Value{vector.IntValue(1), vector.StringValue("x")}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(1, []vector.Value{vector.NullValue(vector.Int64), vector.StringValue("y")}); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Partition(0).NumRows() != 1 || tab.Partition(1).NumRows() != 1 {
		t.Error("partition row counts wrong")
	}
	if !tab.Partition(1).Column(0).IsNull(0) {
		t.Error("null lost")
	}
	// Errors.
	if err := tab.AppendRow(5, nil); err == nil {
		t.Error("bad partition must fail")
	}
	if err := tab.AppendRow(0, []vector.Value{vector.IntValue(1)}); err == nil {
		t.Error("wrong arity must fail")
	}
	if err := tab.AppendRow(0, []vector.Value{vector.StringValue("no"), vector.StringValue("x")}); err == nil {
		t.Error("wrong type must fail")
	}
}

func TestAppendBatchAndColumns(t *testing.T) {
	tab := newTestTable(t, 1)
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.String})
	b.Vecs[0].AppendInt64(1)
	b.Vecs[1].AppendString("a")
	b.Vecs[0].AppendInt64(2)
	b.Vecs[1].AppendString("b")
	if err := tab.AppendBatch(0, b); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	av := vector.NewFromInt64([]int64{3, 4})
	bv := vector.NewFromString([]string{"c", "d"})
	if err := tab.AppendColumns(0, []*vector.Vector{av, bv}); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Errors.
	if err := tab.AppendColumns(0, []*vector.Vector{av}); err == nil {
		t.Error("wrong column count must fail")
	}
	short := vector.NewFromInt64([]int64{1})
	if err := tab.AppendColumns(0, []*vector.Vector{av, vector.NewFromString([]string{"x"})}); err == nil {
		t.Error("ragged columns must fail")
	}
	_ = short
	if err := tab.AppendColumns(0, []*vector.Vector{bv, bv}); err == nil {
		t.Error("type mismatch must fail")
	}
}

func TestSortKey(t *testing.T) {
	tab := newTestTable(t, 1)
	if err := tab.SetSortKey("a"); err != nil {
		t.Fatal(err)
	}
	if tab.SortKey() != "a" {
		t.Error("sort key lost")
	}
	if err := tab.SetSortKey("zz"); err == nil {
		t.Error("unknown sort key must fail")
	}
}

func TestFullRange(t *testing.T) {
	tab := newTestTable(t, 1)
	for i := 0; i < 10; i++ {
		if err := tab.AppendRow(0, []vector.Value{vector.IntValue(int64(i)), vector.StringValue("s")}); err != nil {
			t.Fatal(err)
		}
	}
	r := tab.FullRange(0)
	if len(r) != 1 || r[0].Start != 0 || r[0].End != 10 {
		t.Errorf("full range = %v", r)
	}
	if r[0].Len() != 10 {
		t.Errorf("range length = %d", r[0].Len())
	}
}

func TestPruneRanges(t *testing.T) {
	tab, err := NewTable("p", NewSchema(Column{Name: "v", Typ: vector.Int64}), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Three blocks: values 0..4095, 4096..8191, 8192..12287 (ascending).
	n := 3 * BlockSize
	col := vector.New(vector.Int64, n)
	for i := 0; i < n; i++ {
		col.AppendInt64(int64(i))
	}
	if err := tab.AppendColumns(0, []*vector.Vector{col}); err != nil {
		t.Fatal(err)
	}
	// Bound inside the second block only.
	lo, hi := vector.IntValue(5000), vector.IntValue(6000)
	r := tab.PruneRanges(0, 0, lo, hi, false)
	if len(r) != 1 || r[0].Start != BlockSize || r[0].End != 2*BlockSize {
		t.Errorf("pruned ranges = %v", r)
	}
	// Unbounded low side.
	r = tab.PruneRanges(0, 0, vector.NullValue(vector.Int64), vector.IntValue(100), false)
	if len(r) != 1 || r[0].Start != 0 || r[0].End != BlockSize {
		t.Errorf("pruned ranges = %v", r)
	}
	// Unsatisfiable bound prunes everything.
	r = tab.PruneRanges(0, 0, vector.IntValue(1_000_000), vector.NullValue(vector.Int64), false)
	if len(r) != 0 {
		t.Errorf("expected empty, got %v", r)
	}
	// Fully unbounded keeps one coalesced range.
	r = tab.PruneRanges(0, 0, vector.NullValue(vector.Int64), vector.NullValue(vector.Int64), false)
	if len(r) != 1 || r[0].Start != 0 || r[0].End != uint64(n) {
		t.Errorf("unbounded ranges = %v", r)
	}
}

func TestPruneRangesNullBlocks(t *testing.T) {
	tab, err := NewTable("p", NewSchema(Column{Name: "v", Typ: vector.Int64}), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0: all NULL. Block 1: values.
	col := vector.New(vector.Int64, 2*BlockSize)
	for i := 0; i < BlockSize; i++ {
		col.AppendNull()
	}
	for i := 0; i < BlockSize; i++ {
		col.AppendInt64(int64(i))
	}
	if err := tab.AppendColumns(0, []*vector.Vector{col}); err != nil {
		t.Fatal(err)
	}
	// Without keepNulls the all-NULL block is pruned.
	r := tab.PruneRanges(0, 0, vector.IntValue(0), vector.NullValue(vector.Int64), false)
	if len(r) != 1 || r[0].Start != BlockSize {
		t.Errorf("ranges = %v", r)
	}
	// With keepNulls it survives.
	r = tab.PruneRanges(0, 0, vector.IntValue(0), vector.NullValue(vector.Int64), true)
	if len(r) != 1 || r[0].Start != 0 {
		t.Errorf("keepNulls ranges = %v", r)
	}
}

// TestPruneRangesSoundness: pruning must never lose a qualifying row.
func TestPruneRangesSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab, err := NewTable("p", NewSchema(Column{Name: "v", Typ: vector.Int64}), 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 5*BlockSize + 123
	vals := make([]int64, n)
	col := vector.New(vector.Int64, n)
	for i := 0; i < n; i++ {
		vals[i] = rng.Int63n(1000)
		col.AppendInt64(vals[i])
	}
	if err := tab.AppendColumns(0, []*vector.Vector{col}); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Int63n(1000)
		hi := lo + rng.Int63n(200)
		ranges := tab.PruneRanges(0, 0, vector.IntValue(lo), vector.IntValue(hi), false)
		covered := func(row uint64) bool {
			for _, r := range ranges {
				if row >= r.Start && row < r.End {
					return true
				}
			}
			return false
		}
		for i, v := range vals {
			if v >= lo && v <= hi && !covered(uint64(i)) {
				t.Fatalf("row %d (value %d in [%d,%d]) pruned away", i, v, lo, hi)
			}
		}
		// Ranges must be sorted and non-overlapping.
		for i := 1; i < len(ranges); i++ {
			if ranges[i-1].End > ranges[i].Start {
				t.Fatalf("ranges overlap: %v", ranges)
			}
		}
	}
}

func TestZoneStaleness(t *testing.T) {
	tab := newTestTable(t, 2)
	if sr, sp := tab.ZoneStaleness(); sr != 0 || sp != 0 {
		t.Fatalf("fresh table staleness = %d rows / %d parts, want 0/0", sr, sp)
	}

	// Every append path counts toward staleness.
	if err := tab.AppendRow(0, []vector.Value{vector.IntValue(1), vector.StringValue("x")}); err != nil {
		t.Fatal(err)
	}
	b := vector.NewBatch([]vector.Type{vector.Int64, vector.String})
	b.Vecs[0].AppendInt64(2)
	b.Vecs[1].AppendString("y")
	b.Vecs[0].AppendInt64(3)
	b.Vecs[1].AppendString("z")
	if err := tab.AppendBatch(0, b); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendColumns(1, []*vector.Vector{
		vector.NewFromInt64([]int64{4, 5}),
		vector.NewFromString([]string{"p", "q"}),
	}); err != nil {
		t.Fatal(err)
	}
	if sr, sp := tab.ZoneStaleness(); sr != 5 || sp != 2 {
		t.Fatalf("staleness = %d rows / %d parts, want 5/2", sr, sp)
	}

	before := tab.ZoneMap(0, 0)
	tab.RecomputeZones()
	if sr, sp := tab.ZoneStaleness(); sr != 0 || sp != 0 {
		t.Fatalf("staleness after recompute = %d/%d, want 0/0", sr, sp)
	}
	// Recompute must preserve a correct zone map, not loosen or tighten it
	// incorrectly: same bounds, same row counts.
	after := tab.ZoneMap(0, 0)
	if !after.Valid || after.Rows != before.Rows ||
		after.Min.Compare(before.Min) != 0 ||
		after.Max.Compare(before.Max) != 0 ||
		after.HasNull != before.HasNull {
		t.Fatalf("zone map changed across recompute: before %+v after %+v", before, after)
	}

	// New appends after the recompute restart the drift counter.
	if err := tab.AppendRow(1, []vector.Value{vector.IntValue(6), vector.StringValue("r")}); err != nil {
		t.Fatal(err)
	}
	if sr, sp := tab.ZoneStaleness(); sr != 1 || sp != 1 {
		t.Fatalf("staleness after fresh append = %d/%d, want 1/1", sr, sp)
	}
}
