//go:build !race

package storage

// raceEnabled reports whether the race detector instruments this build; the
// nanosecond-scale timing gate skips under it.
const raceEnabled = false
