// Clock cache over column payloads. When a table is attached to a Cache, the
// decoded vector of every (partition, column) pair is charged against a byte
// budget; under pressure a second-chance clock sweep unlinks cold, clean,
// unpinned payloads, which reload lazily from their partition's segment file
// on next touch. Block SMAs and zone maps are deliberately *not* cached —
// they stay resident so planning and pruning never wait on disk.
//
// Safety model: eviction only unlinks (cd.vec = nil). A scan that pinned the
// vector holds a real reference, so the memory stays alive until the pin is
// released and Go's GC collects it; there is no use-after-free to race. Dirty
// partitions (rows appended since the last checkpoint) are unevictable
// because disk doesn't have their rows yet.
package storage

import (
	"fmt"
	"sync"

	"patchindex/internal/obs"
	"patchindex/internal/vector"
)

// Cache is a byte-budgeted clock (second-chance) cache shared by every table
// of an engine. The zero budget means "no limit": payloads are still tracked
// (so metrics stay honest) but never evicted.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	resident int64
	hand     int
	ring     []clockSlot

	hits       *obs.Counter
	misses     *obs.Counter
	evictions  *obs.Counter
	overshoots *obs.Counter
	residentG  *obs.Gauge
	pinnedG    *obs.Gauge
}

// clockSlot is one cache-managed column payload.
type clockSlot struct {
	p   *Partition
	col int
}

// NewCache creates a cache with the given byte budget (<=0 = unlimited).
func NewCache(budgetBytes int64) *Cache {
	return &Cache{budget: budgetBytes}
}

// SetMetrics wires the cache counters/gauges into the registry. The metric
// names are mirrored automatically into /metrics, /stats, and the monitor
// sampler by the registry snapshot.
func (c *Cache) SetMetrics(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = r.Counter("storage_cache_hits_total")
	c.misses = r.Counter("storage_cache_misses_total")
	c.evictions = r.Counter("storage_cache_evictions_total")
	c.overshoots = r.Counter("storage_cache_budget_overshoots_total")
	c.residentG = r.Gauge("storage_cache_resident_bytes")
	c.pinnedG = r.Gauge("storage_cache_pinned_bytes")
}

// Budget returns the configured byte budget (<=0 = unlimited).
func (c *Cache) Budget() int64 { return c.budget }

// ResidentBytes returns the bytes currently charged for decoded payloads.
func (c *Cache) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// Stats is a point-in-time cache summary for /stats and benches.
type Stats struct {
	BudgetBytes   int64 `json:"budget_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	PinnedBytes   int64 `json:"pinned_bytes"`
	Slots         int   `json:"slots"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
}

// Stats returns a snapshot of the cache state.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var pinned int64
	for _, s := range c.ring {
		cd := s.p.cols[s.col]
		if cd.vec.Load() != nil && cd.pins > 0 {
			pinned += cd.bytes
		}
	}
	return Stats{
		BudgetBytes:   c.budget,
		ResidentBytes: c.resident,
		PinnedBytes:   pinned,
		Slots:         len(c.ring),
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Evictions:     c.evictions.Value(),
	}
}

// noopRelease is the shared release func for unmanaged pins, so the
// cache-disabled fast path allocates nothing.
var noopRelease = func() {}

// pin returns the resident vector for (p, col), loading it from the
// partition's segment file if evicted, and pins it against eviction until
// the release func runs.
func (c *Cache) pin(p *Partition, col int) (*vector.Vector, func(), error) {
	c.mu.Lock()
	cd := p.cols[col]
	if cd.vec.Load() == nil {
		if err := c.loadLocked(p, col); err != nil {
			c.mu.Unlock()
			return nil, nil, err
		}
	} else {
		c.hits.Inc()
	}
	cd.refbit.Store(true)
	cd.pins++
	if cd.pins == 1 {
		c.pinnedG.Add(cd.bytes)
	}
	v := cd.vec.Load()
	c.mu.Unlock()
	released := false
	return v, func() {
		c.mu.Lock()
		if !released {
			released = true
			cd.pins--
			if cd.pins == 0 {
				c.pinnedG.Add(-cd.bytes)
				// Loads that ran while this payload was pinned may have left
				// the cache over budget; settle the debt now that eviction
				// has a candidate again.
				if c.budget > 0 && c.resident > c.budget {
					c.evictLocked(c.resident-c.budget, nil)
				}
			}
		}
		c.mu.Unlock()
	}, nil
}

// touch ensures (p, col) is resident without pinning — the legacy
// Partition.Column path used by builders and maintainers that hold exclusive
// access at the engine level.
func (c *Cache) touch(p *Partition, col int) (*vector.Vector, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cd := p.cols[col]
	if cd.vec.Load() == nil {
		if err := c.loadLocked(p, col); err != nil {
			return nil, err
		}
	} else {
		c.hits.Inc()
	}
	cd.refbit.Store(true)
	return cd.vec.Load(), nil
}

// register charges an already-resident column to the cache (table attach and
// fresh appends) and enters it into the clock ring if new.
func (c *Cache) register(p *Partition, col int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cd := p.cols[col]
	newBytes := int64(0)
	if v := cd.vec.Load(); v != nil {
		newBytes = v.ByteSize()
	}
	delta := newBytes - cd.bytes
	if !cd.inRing {
		cd.inRing = true
		c.ring = append(c.ring, clockSlot{p: p, col: col})
	}
	cd.bytes = newBytes
	cd.refbit.Store(true)
	c.resident += delta
	c.residentG.Add(delta)
	if cd.pins > 0 {
		c.pinnedG.Add(delta)
	}
	if c.budget > 0 && c.resident > c.budget {
		c.evictLocked(c.resident-c.budget, nil)
	}
}

// forget drops all accounting for a partition's columns (table drop).
func (c *Cache) forget(p *Partition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.ring[:0]
	for _, s := range c.ring {
		if s.p == p {
			cd := s.p.cols[s.col]
			c.resident -= cd.bytes
			c.residentG.Add(-cd.bytes)
			if cd.pins > 0 {
				c.pinnedG.Add(-cd.bytes)
			}
			cd.bytes = 0
			cd.inRing = false
			continue
		}
		kept = append(kept, s)
	}
	c.ring = kept
	if c.hand >= len(c.ring) {
		c.hand = 0
	}
}

// loadLocked reads one column payload from the partition's segment file and
// decodes it, evicting first so the budget holds across the load.
func (c *Cache) loadLocked(p *Partition, col int) error {
	cd := p.cols[col]
	if p.store == nil {
		return fmt.Errorf("storage: column %d of partition %d evicted with no backing segment", col, p.ID)
	}
	c.misses.Inc()
	enc, err := p.store.ReadColumn(col)
	if err != nil {
		return err
	}
	need := int64(8 * enc.Len()) // pre-decode estimate for evict-before-load
	if c.budget > 0 && c.resident+need > c.budget {
		c.evictLocked(c.resident+need-c.budget, nil)
	}
	v, err := enc.Decode()
	if err != nil {
		return fmt.Errorf("storage: partition %d column %d: %w", p.ID, col, err)
	}
	cd.vec.Store(v)
	cd.refbit.Store(true)
	cd.bytes = v.ByteSize()
	if !cd.inRing {
		cd.inRing = true
		c.ring = append(c.ring, clockSlot{p: p, col: col})
	}
	c.resident += cd.bytes
	c.residentG.Add(cd.bytes)
	if c.budget > 0 && c.resident > c.budget {
		// Still over after the sweep (everything else pinned or dirty):
		// admit anyway — refusing the load would fail the query — and count
		// the overshoot so the watchdog sees the pressure. The column just
		// loaded is exempt, or the caller would receive the nil we stored.
		c.evictLocked(c.resident-c.budget, cd)
		if c.resident > c.budget {
			c.overshoots.Inc()
		}
	}
	return nil
}

// evictLocked runs the clock hand until `want` bytes were freed or every
// slot was given its second chance twice (all survivors pinned/dirty/hot).
// exempt, when non-nil, is never evicted — the column a load is about to
// hand to its caller.
func (c *Cache) evictLocked(want int64, exempt *columnData) {
	if len(c.ring) == 0 {
		return
	}
	freed := int64(0)
	for sweeps := 0; freed < want && sweeps < 2*len(c.ring); sweeps++ {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		s := c.ring[c.hand]
		c.hand++
		cd := s.p.cols[s.col]
		if cd == exempt || cd.vec.Load() == nil || cd.pins > 0 || s.p.dirty || s.p.store == nil {
			continue
		}
		if cd.refbit.Swap(false) {
			continue
		}
		cd.vec.Store(nil)
		c.resident -= cd.bytes
		c.residentG.Add(-cd.bytes)
		freed += cd.bytes
		cd.bytes = 0
		c.evictions.Inc()
	}
}
