package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"patchindex/internal/vector"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

func (p *Parser) peek() Token    { return p.toks[p.pos] }
func (p *Parser) advance() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) atEOF() bool    { return p.peek().Kind == TokEOF }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error near offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %q", sym, p.peek().Text)
	}
	return nil
}

// softKeywords may be used as ordinary identifiers (column/table names)
// wherever an identifier is expected; they only act as keywords in the
// clause positions that mention them explicitly.
var softKeywords = map[string]bool{
	"KIND": true, "HEADER": true, "THRESHOLD": true, "FORCE": true,
	"PARTITIONS": true, "SORTKEY": true, "IDENTIFIER": true,
	"BITMAP": true, "AUTO": true, "TABLES": true, "PATCHINDEXES": true,
	"COPY": true, "SHOW": true, "DATE": true, "ANALYZE": true,
	"TUNER": true, "ALTER": true,
}

func (p *Parser) expectIdent() (string, error) {
	if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	} else if t.Kind == TokKeyword && softKeywords[t.Text] {
		p.pos++
		return strings.ToLower(t.Text), nil
	}
	return "", p.errorf("expected identifier, got %q", p.peek().Text)
}

// acceptIdentWord consumes a non-reserved word (lexed as a lowercased
// identifier) when it matches, e.g. ALERTS or FOR in SHOW statements.
func (p *Parser) acceptIdentWord(word string) bool {
	if t := p.peek(); t.Kind == TokIdent && t.Text == word {
		p.pos++
		return true
	}
	return false
}

// parseMetricName parses a time-series name: either a quoted string or a
// dotted identifier path like index.emp.s.nsc.patch_ratio (dots lex as
// symbols between identifier segments). Segments that collide with SQL
// keywords — "table", "index" — are accepted and lowercased.
func (p *Parser) parseMetricName() (string, error) {
	if t := p.peek(); t.Kind == TokString {
		p.pos++
		return t.Text, nil
	}
	seg, ok := p.acceptMetricSegment()
	if !ok {
		return "", p.errorf("expected a metric name after FOR")
	}
	name := seg
	for p.acceptSymbol(".") {
		seg, ok = p.acceptMetricSegment()
		if !ok {
			return "", p.errorf("expected a metric name segment after '.'")
		}
		name += "." + seg
	}
	return name, nil
}

// acceptMetricSegment consumes one metric-name segment: an identifier, or a
// keyword token lowercased back to its source form.
func (p *Parser) acceptMetricSegment() (string, bool) {
	switch t := p.peek(); t.Kind {
	case TokIdent:
		p.pos++
		return t.Text, true
	case TokKeyword:
		p.pos++
		return strings.ToLower(t.Text), true
	}
	return "", false
}

func (p *Parser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.Kind == TokKeyword && t.Text == "SELECT":
		return p.parseSelect()
	case t.Kind == TokKeyword && t.Text == "EXPLAIN":
		p.advance()
		analyze := false
		if t := p.peek(); t.Kind == TokKeyword && t.Text == "ANALYZE" {
			p.advance()
			analyze = true
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel, Analyze: analyze}, nil
	case t.Kind == TokKeyword && t.Text == "CREATE":
		return p.parseCreate()
	case t.Kind == TokKeyword && t.Text == "DROP":
		return p.parseDrop()
	case t.Kind == TokKeyword && t.Text == "INSERT":
		return p.parseInsert()
	case t.Kind == TokKeyword && t.Text == "COPY":
		return p.parseCopy()
	case t.Kind == TokKeyword && t.Text == "SHOW":
		p.advance()
		switch {
		case p.acceptKeyword("TABLES"):
			return &ShowStmt{What: "tables"}, nil
		case p.acceptKeyword("PATCHINDEXES"):
			return &ShowStmt{What: "patchindexes"}, nil
		case p.acceptKeyword("TUNER"):
			return &ShowStmt{What: "tuner"}, nil
		case p.acceptIdentWord("alerts"):
			return &ShowStmt{What: "alerts"}, nil
		case p.acceptIdentWord("timeseries"):
			// FOR is not a reserved word, so it arrives as an identifier.
			if !p.acceptIdentWord("for") {
				return nil, p.errorf("expected FOR after SHOW TIMESERIES")
			}
			metric, err := p.parseMetricName()
			if err != nil {
				return nil, err
			}
			return &ShowStmt{What: "timeseries", Arg: metric}, nil
		default:
			return nil, p.errorf("expected TABLES, PATCHINDEXES, TUNER, ALERTS or TIMESERIES after SHOW")
		}
	case t.Kind == TokKeyword && t.Text == "ALTER":
		return p.parseAlter()
	case t.Kind == TokIdent && t.Text == "checkpoint":
		// CHECKPOINT is not a reserved word, so it arrives as an identifier.
		p.advance()
		return &CheckpointStmt{}, nil
	default:
		return nil, p.errorf("expected a statement, got %q", t.Text)
	}
}

// parseAlter parses ALTER TUNER START|STOP|NOW|ROLLBACK. The actions are not
// reserved words, so they arrive as (lowercased) identifiers.
func (p *Parser) parseAlter() (Statement, error) {
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TUNER"); err != nil {
		return nil, err
	}
	action, err := p.expectIdent()
	if err != nil {
		return nil, p.errorf("expected START, STOP, NOW or ROLLBACK after ALTER TUNER")
	}
	switch action {
	case "start", "stop", "now", "rollback":
		return &AlterTunerStmt{Action: action}, nil
	default:
		return nil, p.errorf("unknown ALTER TUNER action %q (want START, STOP, NOW or ROLLBACK)", action)
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRefOrSubquery()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for {
		outer := false
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if p.acceptKeyword("LEFT") {
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			outer = true
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		jt, err := p.parseTableRefOrSubquery()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		right, err := p.parseColName()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, JoinClause{Table: jt, Outer: outer, Left: left, Right: right})
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected a number after LIMIT")
		}
		p.advance()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		name, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if t := p.peek(); t.Kind == TokIdent {
		p.advance()
		item.Alias = t.Text
	}
	return item, nil
}

// parseTableRefOrSubquery parses either a plain table reference or a
// parenthesized derived table: "( SELECT ... ) [AS] alias".
func (p *Parser) parseTableRefOrSubquery() (*TableRef, error) {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == "(" {
		p.advance()
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return nil, p.errorf("derived tables require an alias")
		}
		return &TableRef{Alias: alias, Subquery: sub}, nil
	}
	return p.parseTableRef()
}

func (p *Parser) parseTableRef() (*TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent {
		p.advance()
		ref.Alias = t.Text
	}
	return ref, nil
}

func (p *Parser) parseColName() (*ColName, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol(".") {
		second, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColName{Table: first, Name: second}, nil
	}
	return &ColName{Name: first}, nil
}

// Expression grammar (loosest to tightest):
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | cmp
//	cmp     := add ((=|<>|<|<=|>|>=) add | IS [NOT] NULL)?
//	add     := mul ((+|-) mul)*
//	mul     := unary ((*|/|%) unary)*
//	unary   := - unary | primary
//	primary := literal | funcall | colname | ( expr )
func (p *Parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		in, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Input: in}, nil
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind == TokSymbol {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.advance()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: t.Text, Left: left, Right: right}, nil
		}
	}
	if p.acceptKeyword("IS") {
		negated := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Input: left, Negated: negated}, nil
	}
	return left, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "+" && t.Text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: t.Text, Left: left, Right: right}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: t.Text, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == "-" {
		p.advance()
		in, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals, otherwise 0 - e.
		if lit, ok := in.(*Lit); ok {
			switch lit.Val.Typ {
			case vector.Int64:
				return &Lit{Val: vector.IntValue(-lit.Val.I64)}, nil
			case vector.Float64:
				return &Lit{Val: vector.FloatValue(-lit.Val.F64)}, nil
			}
		}
		return &BinOp{Op: "-", Left: &Lit{Val: vector.IntValue(0)}, Right: in}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		if strings.ContainsRune(t.Text, '.') {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Lit{Val: vector.FloatValue(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Lit{Val: vector.IntValue(n)}, nil
	case t.Kind == TokString:
		p.advance()
		return &Lit{Val: vector.StringValue(t.Text)}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.advance()
		return &Lit{Val: vector.NullValue(vector.Int64)}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.advance()
		return &Lit{Val: vector.BoolValue(true)}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.advance()
		return &Lit{Val: vector.BoolValue(false)}, nil
	case t.Kind == TokKeyword && t.Text == "DATE":
		p.advance()
		s := p.peek()
		if s.Kind != TokString {
			return nil, p.errorf("expected a date string after DATE")
		}
		p.advance()
		tm, err := time.Parse("2006-01-02", s.Text)
		if err != nil {
			return nil, p.errorf("invalid date %q", s.Text)
		}
		return &Lit{Val: vector.DateFromTime(tm)}, nil
	case t.Kind == TokKeyword && (t.Text == "COUNT" || t.Text == "SUM" || t.Text == "MIN" || t.Text == "MAX"):
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		call := &FuncCall{Name: t.Text}
		if t.Text == "COUNT" && p.acceptSymbol("*") {
			call.Star = true
		} else {
			call.Distinct = p.acceptKeyword("DISTINCT")
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Arg = arg
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.Kind == TokSymbol && t.Text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		return p.parseColName()
	default:
		return nil, p.errorf("unexpected token %q in expression", t.Text)
	}
}

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("PATCHINDEX"):
		return p.parseCreatePatchIndex()
	default:
		return nil, p.errorf("expected TABLE or PATCHINDEX after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name}
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		var typeName string
		if t.Kind == TokIdent || t.Kind == TokKeyword {
			typeName = strings.ToUpper(t.Text)
			p.advance()
		} else {
			return nil, p.errorf("expected a type name for column %s", colName)
		}
		typ, err := vector.TypeFromName(typeName)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		stmt.Columns = append(stmt.Columns, ColumnDef{Name: colName, Typ: typ})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("PARTITIONS"):
			t := p.peek()
			if t.Kind != TokNumber {
				return nil, p.errorf("expected a number after PARTITIONS")
			}
			p.advance()
			n, err := strconv.Atoi(t.Text)
			if err != nil || n < 1 {
				return nil, p.errorf("invalid partition count %q", t.Text)
			}
			stmt.Partitions = n
		case p.acceptKeyword("SORTKEY"):
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.SortKey = col
		default:
			return stmt, nil
		}
	}
}

func (p *Parser) parseCreatePatchIndex() (Statement, error) {
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	column, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	stmt := &CreatePatchIndexStmt{Table: table, Column: column, Threshold: 1.0, Kind: "auto"}
	switch {
	case p.acceptKeyword("UNIQUE"):
		stmt.Unique = true
	case p.acceptKeyword("SORTED"):
		stmt.Unique = false
		stmt.Descending = p.acceptKeyword("DESC")
	default:
		return nil, p.errorf("expected UNIQUE or SORTED")
	}
	for {
		switch {
		case p.acceptKeyword("THRESHOLD"):
			t := p.peek()
			if t.Kind != TokNumber {
				return nil, p.errorf("expected a number after THRESHOLD")
			}
			p.advance()
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, p.errorf("invalid threshold %q", t.Text)
			}
			stmt.Threshold = f
		case p.acceptKeyword("KIND"):
			switch {
			case p.acceptKeyword("IDENTIFIER"):
				stmt.Kind = "identifier"
			case p.acceptKeyword("BITMAP"):
				stmt.Kind = "bitmap"
			case p.acceptKeyword("AUTO"):
				stmt.Kind = "auto"
			default:
				return nil, p.errorf("expected IDENTIFIER, BITMAP or AUTO after KIND")
			}
		case p.acceptKeyword("FORCE"):
			stmt.Force = true
		default:
			return stmt, nil
		}
	}
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name}, nil
	case p.acceptKeyword("PATCHINDEX"):
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		column, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &DropPatchIndexStmt{Table: table, Column: column}, nil
	default:
		return nil, p.errorf("expected TABLE or PATCHINDEX after DROP")
	}
}

func (p *Parser) parseCopy() (Statement, error) {
	if err := p.expectKeyword("COPY"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TokString {
		return nil, p.errorf("expected a file path string after FROM")
	}
	p.advance()
	stmt := &CopyStmt{Table: table, Path: t.Text}
	if p.acceptKeyword("WITH") {
		if err := p.expectKeyword("HEADER"); err != nil {
			return nil, err
		}
		stmt.Header = true
	} else if p.acceptKeyword("HEADER") {
		stmt.Header = true
	}
	return stmt, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			return stmt, nil
		}
	}
}
