package sql

import "strings"

// Fingerprint computes a stable statement fingerprint: literals are stripped,
// whitespace and comments collapse, keywords and identifiers are lowercased,
// and lists of literals (IN-lists, multi-row VALUES) collapse to a single
// placeholder group. Statements that differ only in their constants — the
// same "statement shape" — therefore map to the same 64-bit id, which keys
// the workload profiler's aggregate table and tags traces and the slow-query
// log.
//
// The normalizer is deliberately forgiving: it never fails, even on input the
// parser would reject, so error statements are profiled under their shape
// too. Rules:
//
//   - number and string literals → "?" (TRUE/FALSE/NULL keep their spelling:
//     they change the shape of a predicate, not just its constant)
//   - "?, ?, ..." → "?"  and  "(?), (?), ..." → "(?)"
//   - identifiers and keywords lowercase; runs of whitespace and -- comments
//     become a single space
//
// The returned id is an FNV-1a hash of the normalized text (also returned,
// for display).
func Fingerprint(query string) (uint64, string) {
	norm := Normalize(query)
	// FNV-1a, inlined to keep the hot path allocation-free.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(norm); i++ {
		h ^= uint64(norm[i])
		h *= prime64
	}
	return h, norm
}

// Normalize returns the literal-stripped, case- and whitespace-normalized
// form of a statement (the text Fingerprint hashes).
func Normalize(query string) string {
	toks := normTokens(query)
	toks = collapsePlaceholders(toks)
	return joinTokens(toks)
}

// normTokens scans the input into normalized token strings. Unlike Lex it
// cannot fail: unknown characters pass through as single-character tokens.
func normTokens(input string) []string {
	var toks []string
	i, n := 0, len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			toks = append(toks, strings.ToLower(input[start:i]))
		case c >= '0' && c <= '9':
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' || input[i] == 'e' || input[i] == 'E') {
				// "1.x" where x is not a digit ends the number before the dot.
				if input[i] == '.' && (i+1 >= n || input[i+1] < '0' || input[i+1] > '9') {
					break
				}
				i++
			}
			toks = append(toks, "?")
		case c == '\'':
			i++
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			toks = append(toks, "?")
		case (c == '<' || c == '>' || c == '!') && i+1 < n && (input[i+1] == '=' || input[i+1] == '>'):
			toks = append(toks, input[i:i+2])
			i += 2
		default:
			toks = append(toks, string(c))
			i++
		}
	}
	return toks
}

// collapsePlaceholders folds literal lists so that IN-list length and
// VALUES row count do not change the fingerprint:
//
//	? , ?            → ?        (repeatedly, so any list length collapses)
//	( ? ) , ( ? )    → ( ? )    (multi-row VALUES)
func collapsePlaceholders(toks []string) []string {
	out := toks[:0]
	for _, t := range toks {
		out = append(out, t)
		for {
			n := len(out)
			if n >= 3 && out[n-1] == "?" && out[n-2] == "," && out[n-3] == "?" {
				out = out[:n-2]
				continue
			}
			if n >= 5 && out[n-1] == "?" && out[n-2] == "(" && out[n-3] == "," &&
				out[n-4] == ")" && out[n-5] == "?" {
				out = out[:n-4]
				continue
			}
			break
		}
	}
	return out
}

// joinTokens renders tokens with minimal spacing: no space before ",", ")",
// ";" and none after "(" or ".", or before "." — readable and stable.
func joinTokens(toks []string) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 {
			prev := toks[i-1]
			if t != "," && t != ")" && t != ";" && t != "." && prev != "(" && prev != "." {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString(t)
	}
	return sb.String()
}
