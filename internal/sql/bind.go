package sql

import (
	"fmt"
	"strings"

	"patchindex/internal/catalog"
	"patchindex/internal/exec"
	"patchindex/internal/expr"
	"patchindex/internal/plan"
	"patchindex/internal/vector"
)

// Binder resolves parsed SELECT statements into logical plans against a
// catalog.
type Binder struct {
	Cat *catalog.Catalog
}

// scope tracks the visible columns of the current plan node and the table
// alias each column belongs to.
type scope struct {
	aliases []string // per column: the table alias it came from ("" after agg)
	node    plan.Node
}

func (s *scope) schema() []plan.Column { return s.node.Schema() }

// resolve finds the position of a (possibly qualified) column name.
func (s *scope) resolve(c *ColName) (int, error) {
	found := -1
	for i, col := range s.schema() {
		if !strings.EqualFold(col.Name, c.Name) {
			continue
		}
		if c.Table != "" && !strings.EqualFold(s.aliases[i], c.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s", c.Name)
		}
		found = i
	}
	if found < 0 {
		if c.Table != "" {
			return 0, fmt.Errorf("sql: unknown column %s.%s", c.Table, c.Name)
		}
		return 0, fmt.Errorf("sql: unknown column %s", c.Name)
	}
	return found, nil
}

// BindSelect turns a SELECT statement into an unoptimized logical plan.
func (b *Binder) BindSelect(sel *SelectStmt) (plan.Node, error) {
	sc, err := b.bindFrom(sel)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		pred, err := b.bindExpr(sel.Where, sc)
		if err != nil {
			return nil, err
		}
		if pred.Type() != vector.Bool {
			return nil, fmt.Errorf("sql: WHERE predicate must be boolean")
		}
		sc = &scope{aliases: sc.aliases, node: plan.NewFilterNode(sc.node, pred)}
	}

	hasAggs := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, item := range sel.Items {
		if _, ok := item.Expr.(*FuncCall); ok {
			hasAggs = true
		}
	}

	var out *scope
	if hasAggs {
		out, err = b.bindAggregate(sel, sc)
	} else {
		out, err = b.bindProjection(sel, sc)
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		all := make([]int, len(out.schema()))
		for i := range all {
			all[i] = i
		}
		agg, err := plan.NewAggregateNode(out.node, all, nil, nil)
		if err != nil {
			return nil, err
		}
		out = &scope{aliases: out.aliases, node: agg}
	}

	if len(sel.OrderBy) > 0 {
		out, err = b.bindOrderBy(sel, out, sc, hasAggs)
		if err != nil {
			return nil, err
		}
	}

	if sel.Limit >= 0 {
		out = &scope{aliases: out.aliases, node: plan.NewLimitNode(out.node, sel.Limit)}
	}
	return out.node, nil
}

// bindOrderBy resolves the ORDER BY keys against the output scope. For plain
// projections, ordering by a column that is not in the select list is
// supported by appending hidden sort columns to the projection and stripping
// them again after the sort (standard SQL behaviour).
func (b *Binder) bindOrderBy(sel *SelectStmt, out, input *scope, hasAggs bool) (*scope, error) {
	type orderRef struct {
		cn     *ColName
		desc   bool
		outPos int // position in the (possibly extended) output, -1 = hidden
		hidden int // index into hiddenSrc when outPos == -1
	}
	refs := make([]orderRef, len(sel.OrderBy))
	var hiddenSrc []int
	for i, item := range sel.OrderBy {
		cn, ok := item.Expr.(*ColName)
		if !ok {
			return nil, fmt.Errorf("sql: ORDER BY supports only column references")
		}
		refs[i] = orderRef{cn: cn, desc: item.Desc, outPos: -1, hidden: -1}
		if pos, err := out.resolve(cn); err == nil {
			refs[i].outPos = pos
			continue
		}
		if hasAggs || sel.Distinct {
			// Hidden sort columns are not meaningful above aggregation or
			// DISTINCT: re-resolve to surface the original error.
			_, err := out.resolve(cn)
			return nil, err
		}
		srcPos, err := input.resolve(cn)
		if err != nil {
			return nil, err
		}
		refs[i].hidden = len(hiddenSrc)
		hiddenSrc = append(hiddenSrc, srcPos)
	}

	if len(hiddenSrc) == 0 {
		keys := make([]exec.SortKey, len(refs))
		for i, r := range refs {
			keys[i] = exec.SortKey{Col: r.outPos, Desc: r.desc}
		}
		return &scope{aliases: out.aliases, node: plan.NewSortNode(out.node, keys)}, nil
	}

	// Rebuild the projection with hidden sort columns appended.
	proj, ok := out.node.(*plan.ProjectNode)
	if !ok {
		return nil, fmt.Errorf("sql: cannot order by column %s: not in the select list", refs[0].cn.Name)
	}
	exprs := append([]expr.Expr{}, proj.Exprs...)
	names := append([]string{}, proj.Names...)
	visible := len(exprs)
	inSchema := input.schema()
	for h, src := range hiddenSrc {
		exprs = append(exprs, expr.NewColRef(src, inSchema[src].Typ, inSchema[src].Name))
		names = append(names, fmt.Sprintf("__order_%d", h))
	}
	extended, err := plan.NewProjectNode(proj.Input, exprs, names)
	if err != nil {
		return nil, err
	}
	keys := make([]exec.SortKey, len(refs))
	for i, r := range refs {
		if r.outPos >= 0 {
			keys[i] = exec.SortKey{Col: r.outPos, Desc: r.desc}
		} else {
			keys[i] = exec.SortKey{Col: visible + r.hidden, Desc: r.desc}
		}
	}
	sorted := plan.NewSortNode(extended, keys)
	// Strip the hidden columns again.
	finalExprs := make([]expr.Expr, visible)
	finalNames := make([]string, visible)
	extSchema := sorted.Schema()
	for i := 0; i < visible; i++ {
		finalExprs[i] = expr.NewColRef(i, extSchema[i].Typ, extSchema[i].Name)
		finalNames[i] = extSchema[i].Name
	}
	final, err := plan.NewProjectNode(sorted, finalExprs, finalNames)
	if err != nil {
		return nil, err
	}
	return &scope{aliases: out.aliases, node: final}, nil
}

// bindFrom builds the scan/join tree of the FROM clause. Scans project only
// the columns the statement references (column pruning), unless SELECT *
// requires everything.
func (b *Binder) bindFrom(sel *SelectStmt) (*scope, error) {
	qualified, unqualified, star := referencedColumns(sel)
	mkScan := func(ref *TableRef) (*scope, error) {
		if ref.Subquery != nil {
			// Derived table: bind the subquery independently; its output
			// columns become a relation under the mandatory alias.
			node, err := b.BindSelect(ref.Subquery)
			if err != nil {
				return nil, err
			}
			aliases := make([]string, len(node.Schema()))
			for i := range aliases {
				aliases[i] = ref.Alias
			}
			return &scope{aliases: aliases, node: node}, nil
		}
		t, err := b.Cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		alias := ref.Name
		if ref.Alias != "" {
			alias = ref.Alias
		}
		var cols []int
		for i, c := range t.Schema().Columns {
			if star || unqualified[strings.ToLower(c.Name)] ||
				qualified[strings.ToLower(alias)+"."+strings.ToLower(c.Name)] {
				cols = append(cols, i)
			}
		}
		if len(cols) == 0 {
			cols = []int{0} // scans need at least one column (e.g. COUNT(*))
		}
		node := plan.NewScanNode(t, cols)
		aliases := make([]string, len(cols))
		for i := range aliases {
			aliases[i] = alias
		}
		return &scope{aliases: aliases, node: node}, nil
	}

	cur, err := mkScan(sel.From)
	if err != nil {
		return nil, err
	}
	for _, jc := range sel.Joins {
		right, err := mkScan(jc.Table)
		if err != nil {
			return nil, err
		}
		// Resolve the ON columns: one must belong to the accumulated left
		// side, the other to the new table.
		leftPos, lerr := cur.resolve(jc.Left)
		var rightPos int
		if lerr == nil {
			rightPos, err = right.resolve(jc.Right)
			if err != nil {
				return nil, err
			}
		} else {
			// Swapped orientation: left name belongs to the new table.
			leftPos, err = cur.resolve(jc.Right)
			if err != nil {
				return nil, fmt.Errorf("sql: join condition references unknown columns (%v; %v)", lerr, err)
			}
			rightPos, err = right.resolve(jc.Left)
			if err != nil {
				return nil, err
			}
		}
		j, err := plan.NewJoinNode(cur.node, right.node, leftPos, rightPos)
		if err != nil {
			return nil, err
		}
		j.Outer = jc.Outer
		cur = &scope{aliases: append(append([]string{}, cur.aliases...), right.aliases...), node: j}
	}
	return cur, nil
}

// referencedColumns collects every column name a statement references, for
// scan column pruning: qualified ("alias.col") and unqualified ("col") name
// sets, plus whether a SELECT * requires all columns.
func referencedColumns(sel *SelectStmt) (qualified, unqualified map[string]bool, star bool) {
	qualified = map[string]bool{}
	unqualified = map[string]bool{}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColName:
			if x.Table != "" {
				qualified[strings.ToLower(x.Table)+"."+strings.ToLower(x.Name)] = true
			} else {
				unqualified[strings.ToLower(x.Name)] = true
			}
		case *BinOp:
			walk(x.Left)
			walk(x.Right)
		case *NotExpr:
			walk(x.Input)
		case *IsNullExpr:
			walk(x.Input)
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	for _, item := range sel.Items {
		if item.Star {
			star = true
			continue
		}
		walk(item.Expr)
	}
	for _, jc := range sel.Joins {
		walk(jc.Left)
		walk(jc.Right)
	}
	if sel.Where != nil {
		walk(sel.Where)
	}
	for _, g := range sel.GroupBy {
		walk(g)
	}
	if sel.Having != nil {
		walk(sel.Having)
	}
	for _, o := range sel.OrderBy {
		walk(o.Expr)
	}
	return qualified, unqualified, star
}

// bindProjection builds the select-list projection for non-aggregate queries.
func (b *Binder) bindProjection(sel *SelectStmt, sc *scope) (*scope, error) {
	var exprs []expr.Expr
	var names, aliases []string
	for _, item := range sel.Items {
		if item.Star {
			for i, col := range sc.schema() {
				exprs = append(exprs, expr.NewColRef(i, col.Typ, col.Name))
				names = append(names, col.Name)
				aliases = append(aliases, sc.aliases[i])
			}
			continue
		}
		e, err := b.bindExpr(item.Expr, sc)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		names = append(names, itemName(item))
		aliases = append(aliases, aliasOf(item, sc))
	}
	p, err := plan.NewProjectNode(sc.node, exprs, names)
	if err != nil {
		return nil, err
	}
	return &scope{aliases: aliases, node: p}, nil
}

// aliasOf keeps the table alias for plain column references so qualified
// names still resolve above the projection.
func aliasOf(item SelectItem, sc *scope) string {
	if cn, ok := item.Expr.(*ColName); ok {
		if pos, err := sc.resolve(cn); err == nil {
			return sc.aliases[pos]
		}
	}
	return ""
}

// itemName derives the output column name of a select item.
func itemName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *ColName:
		return e.Name
	case *FuncCall:
		name := strings.ToLower(e.Name)
		if e.Star {
			return name
		}
		if arg, ok := e.Arg.(*ColName); ok {
			if e.Distinct {
				return fmt.Sprintf("%s_distinct_%s", name, arg.Name)
			}
			return fmt.Sprintf("%s_%s", name, arg.Name)
		}
		return name
	default:
		return "expr"
	}
}

// bindAggregate builds GroupBy+aggregate plans: Aggregate over the input,
// optional HAVING filter, then a projection arranging the select list.
func (b *Binder) bindAggregate(sel *SelectStmt, sc *scope) (*scope, error) {
	// Group columns must be plain column references.
	groupCols := make([]int, 0, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		cn, ok := g.(*ColName)
		if !ok {
			return nil, fmt.Errorf("sql: GROUP BY supports only column references")
		}
		pos, err := sc.resolve(cn)
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, pos)
	}

	// Collect aggregate calls from the select list and HAVING.
	var specs []exec.AggSpec
	var specNames []string
	addAgg := func(fc *FuncCall) (int, error) {
		spec, name, err := b.aggSpec(fc, sc)
		if err != nil {
			return 0, err
		}
		for i, s := range specs {
			if s == spec {
				return i, nil
			}
		}
		specs = append(specs, spec)
		specNames = append(specNames, name)
		return len(specs) - 1, nil
	}

	type itemRef struct {
		isAgg bool
		pos   int // group index or agg index
		name  string
		alias string
	}
	var refs []itemRef
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		}
		switch e := item.Expr.(type) {
		case *FuncCall:
			idx, err := addAgg(e)
			if err != nil {
				return nil, err
			}
			refs = append(refs, itemRef{isAgg: true, pos: idx, name: itemName(item)})
		case *ColName:
			pos, err := sc.resolve(e)
			if err != nil {
				return nil, err
			}
			gi := -1
			for i, g := range groupCols {
				if g == pos {
					gi = i
					break
				}
			}
			if gi < 0 {
				return nil, fmt.Errorf("sql: column %s must appear in GROUP BY", e.Name)
			}
			refs = append(refs, itemRef{pos: gi, name: itemName(item), alias: sc.aliases[pos]})
		default:
			return nil, fmt.Errorf("sql: select items under aggregation must be columns or aggregates")
		}
	}

	// HAVING may reference additional aggregates; bind it after collecting.
	var havingExpr Expr = sel.Having
	havingAggs := map[*FuncCall]int{}
	if havingExpr != nil {
		if err := collectAggs(havingExpr, func(fc *FuncCall) error {
			idx, err := addAgg(fc)
			if err != nil {
				return err
			}
			havingAggs[fc] = idx
			return nil
		}); err != nil {
			return nil, err
		}
	}

	agg, err := plan.NewAggregateNode(sc.node, groupCols, specs, specNames)
	if err != nil {
		return nil, err
	}
	aggAliases := make([]string, len(agg.Schema()))
	for i, g := range groupCols {
		aggAliases[i] = sc.aliases[g]
	}
	cur := &scope{aliases: aggAliases, node: agg}

	if havingExpr != nil {
		pred, err := b.bindHaving(havingExpr, cur, sc, groupCols, havingAggs)
		if err != nil {
			return nil, err
		}
		if pred.Type() != vector.Bool {
			return nil, fmt.Errorf("sql: HAVING predicate must be boolean")
		}
		cur = &scope{aliases: cur.aliases, node: plan.NewFilterNode(cur.node, pred)}
	}

	// Final projection arranging the select list over the aggregate schema.
	exprs := make([]expr.Expr, len(refs))
	names := make([]string, len(refs))
	aliases := make([]string, len(refs))
	aggSchema := cur.schema()
	identity := len(refs) == len(aggSchema)
	for i, r := range refs {
		pos := r.pos
		if r.isAgg {
			pos = len(groupCols) + r.pos
		}
		exprs[i] = expr.NewColRef(pos, aggSchema[pos].Typ, aggSchema[pos].Name)
		names[i] = r.name
		aliases[i] = r.alias
		if pos != i || !strings.EqualFold(names[i], aggSchema[pos].Name) {
			identity = false
		}
	}
	if identity {
		return cur, nil
	}
	p, err := plan.NewProjectNode(cur.node, exprs, names)
	if err != nil {
		return nil, err
	}
	return &scope{aliases: aliases, node: p}, nil
}

// aggSpec translates a parsed aggregate call into an execution spec.
func (b *Binder) aggSpec(fc *FuncCall, sc *scope) (exec.AggSpec, string, error) {
	if fc.Star {
		return exec.AggSpec{Func: exec.CountStar, Col: -1}, "count", nil
	}
	arg, ok := fc.Arg.(*ColName)
	if !ok {
		return exec.AggSpec{}, "", fmt.Errorf("sql: aggregate arguments must be plain columns")
	}
	pos, err := sc.resolve(arg)
	if err != nil {
		return exec.AggSpec{}, "", err
	}
	var f exec.AggFunc
	switch fc.Name {
	case "COUNT":
		if fc.Distinct {
			f = exec.CountDistinct
		} else {
			f = exec.Count
		}
	case "SUM":
		f = exec.Sum
	case "MIN":
		f = exec.Min
	case "MAX":
		f = exec.Max
	default:
		return exec.AggSpec{}, "", fmt.Errorf("sql: unknown aggregate %s", fc.Name)
	}
	name := strings.ToLower(fc.Name) + "_" + arg.Name
	if fc.Distinct {
		name = "count_distinct_" + arg.Name
	}
	return exec.AggSpec{Func: f, Col: pos}, name, nil
}

// collectAggs walks an AST expression invoking fn on every aggregate call.
func collectAggs(e Expr, fn func(*FuncCall) error) error {
	switch x := e.(type) {
	case *FuncCall:
		return fn(x)
	case *BinOp:
		if err := collectAggs(x.Left, fn); err != nil {
			return err
		}
		return collectAggs(x.Right, fn)
	case *NotExpr:
		return collectAggs(x.Input, fn)
	case *IsNullExpr:
		return collectAggs(x.Input, fn)
	default:
		return nil
	}
}

// bindHaving binds a HAVING predicate against the aggregate output schema:
// group columns resolve by name, aggregate calls resolve to their spec's
// output position.
func (b *Binder) bindHaving(e Expr, aggScope, inputScope *scope, groupCols []int, aggPos map[*FuncCall]int) (expr.Expr, error) {
	switch x := e.(type) {
	case *FuncCall:
		idx, ok := aggPos[x]
		if !ok {
			return nil, fmt.Errorf("sql: internal: unbound aggregate in HAVING")
		}
		pos := len(groupCols) + idx
		sch := aggScope.schema()
		return expr.NewColRef(pos, sch[pos].Typ, sch[pos].Name), nil
	case *ColName:
		pos, err := aggScope.resolve(x)
		if err != nil {
			return nil, err
		}
		sch := aggScope.schema()
		return expr.NewColRef(pos, sch[pos].Typ, sch[pos].Name), nil
	case *Lit:
		return expr.NewLiteral(x.Val), nil
	case *BinOp:
		l, err := b.bindHaving(x.Left, aggScope, inputScope, groupCols, aggPos)
		if err != nil {
			return nil, err
		}
		r, err := b.bindHaving(x.Right, aggScope, inputScope, groupCols, aggPos)
		if err != nil {
			return nil, err
		}
		return combineBinOp(x.Op, l, r)
	case *NotExpr:
		in, err := b.bindHaving(x.Input, aggScope, inputScope, groupCols, aggPos)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(in)
	case *IsNullExpr:
		in, err := b.bindHaving(x.Input, aggScope, inputScope, groupCols, aggPos)
		if err != nil {
			return nil, err
		}
		return expr.NewIsNull(in, x.Negated), nil
	default:
		return nil, fmt.Errorf("sql: unsupported expression in HAVING")
	}
}

// bindExpr binds an AST expression against a scope.
func (b *Binder) bindExpr(e Expr, sc *scope) (expr.Expr, error) {
	switch x := e.(type) {
	case *ColName:
		pos, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		sch := sc.schema()
		return expr.NewColRef(pos, sch[pos].Typ, sch[pos].Name), nil
	case *Lit:
		return expr.NewLiteral(x.Val), nil
	case *BinOp:
		l, err := b.bindExpr(x.Left, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.Right, sc)
		if err != nil {
			return nil, err
		}
		return combineBinOp(x.Op, l, r)
	case *NotExpr:
		in, err := b.bindExpr(x.Input, sc)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(in)
	case *IsNullExpr:
		in, err := b.bindExpr(x.Input, sc)
		if err != nil {
			return nil, err
		}
		return expr.NewIsNull(in, x.Negated), nil
	case *FuncCall:
		return nil, fmt.Errorf("sql: aggregate %s is not allowed here", x.Name)
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

// combineBinOp maps an AST operator onto a typed expression constructor.
func combineBinOp(op string, l, r expr.Expr) (expr.Expr, error) {
	switch op {
	case "=":
		return expr.NewCmp(expr.EQ, l, r)
	case "<>":
		return expr.NewCmp(expr.NE, l, r)
	case "<":
		return expr.NewCmp(expr.LT, l, r)
	case "<=":
		return expr.NewCmp(expr.LE, l, r)
	case ">":
		return expr.NewCmp(expr.GT, l, r)
	case ">=":
		return expr.NewCmp(expr.GE, l, r)
	case "AND":
		return expr.NewBool(expr.And, l, r)
	case "OR":
		return expr.NewBool(expr.Or, l, r)
	case "+":
		return expr.NewArith(expr.Add, l, r)
	case "-":
		return expr.NewArith(expr.Sub, l, r)
	case "*":
		return expr.NewArith(expr.Mul, l, r)
	case "/":
		return expr.NewArith(expr.Div, l, r)
	case "%":
		return expr.NewArith(expr.Mod, l, r)
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", op)
	}
}
