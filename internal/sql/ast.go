package sql

import "patchindex/internal/vector"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 if absent
}

func (*SelectStmt) stmt() {}

// SelectItem is one entry of the select list.
type SelectItem struct {
	Star  bool // SELECT *
	Expr  Expr
	Alias string
}

// TableRef names a table — or a derived table (subquery), in which case
// Alias is mandatory — with an optional alias.
type TableRef struct {
	Name     string
	Alias    string
	Subquery *SelectStmt // non-nil for derived tables
}

// JoinClause is an INNER or LEFT OUTER JOIN with a single equality
// condition.
type JoinClause struct {
	Table *TableRef
	Outer bool
	// ON Left = Right (both column references)
	Left, Right *ColName
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Name       string
	Columns    []ColumnDef
	Partitions int // 0 = default
	SortKey    string
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Typ  vector.Type
}

// DropTableStmt drops a table.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt() {}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table string
	Rows  [][]Expr // literals only
}

func (*InsertStmt) stmt() {}

// CreatePatchIndexStmt creates a PatchIndex:
//
//	CREATE PATCHINDEX ON t(c) UNIQUE|SORTED [DESC]
//	    [THRESHOLD x] [KIND IDENTIFIER|BITMAP|AUTO] [FORCE]
type CreatePatchIndexStmt struct {
	Table      string
	Column     string
	Unique     bool // true = NUC, false = NSC
	Descending bool
	Threshold  float64 // default 1.0
	Kind       string  // "identifier", "bitmap", "auto"
	Force      bool
}

func (*CreatePatchIndexStmt) stmt() {}

// DropPatchIndexStmt drops a PatchIndex.
type DropPatchIndexStmt struct {
	Table  string
	Column string
}

func (*DropPatchIndexStmt) stmt() {}

// CopyStmt bulk-loads a CSV file into a table:
//
//	COPY t FROM 'file.csv' [WITH HEADER]
type CopyStmt struct {
	Table  string
	Path   string
	Header bool
}

func (*CopyStmt) stmt() {}

// ExplainStmt wraps a SELECT for plan display. With Analyze set the query is
// executed and the plan is annotated with runtime statistics.
type ExplainStmt struct {
	Query   *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// ShowStmt is SHOW TABLES, SHOW PATCHINDEXES, SHOW TUNER, SHOW ALERTS, or
// SHOW TIMESERIES FOR <metric> (Arg carries the metric name).
type ShowStmt struct {
	What string
	Arg  string
}

func (*ShowStmt) stmt() {}

// AlterTunerStmt controls the background tuner:
//
//	ALTER TUNER START | STOP | NOW | ROLLBACK
//
// START/STOP flip the background loop, NOW runs one tuning cycle
// synchronously, ROLLBACK restores the index set captured when the tuner
// was created (dropping auto-created indexes, re-creating dropped ones).
type AlterTunerStmt struct {
	Action string // "start", "stop", "now", "rollback"
}

func (*AlterTunerStmt) stmt() {}

// CheckpointStmt is CHECKPOINT: flush dirty partitions to compressed
// segment files, write the catalog manifest, and rotate the WAL so restart
// replays only records after this point. Requires a durable engine
// (Config.DataDir).
type CheckpointStmt struct{}

func (*CheckpointStmt) stmt() {}

// Expr is an unbound AST expression.
type Expr interface{ expr() }

// ColName references a column, optionally qualified.
type ColName struct {
	Table string // optional qualifier
	Name  string
}

func (*ColName) expr() {}

// Lit is a literal value.
type Lit struct{ Val vector.Value }

func (*Lit) expr() {}

// BinOp is a binary operation (comparison, boolean, arithmetic).
type BinOp struct {
	Op          string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/", "%"
	Left, Right Expr
}

func (*BinOp) expr() {}

// NotExpr is NOT e.
type NotExpr struct{ Input Expr }

func (*NotExpr) expr() {}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	Input   Expr
	Negated bool
}

func (*IsNullExpr) expr() {}

// FuncCall is an aggregate function call.
type FuncCall struct {
	Name     string // COUNT, SUM, MIN, MAX (upper case)
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT c)
	Arg      Expr
}

func (*FuncCall) expr() {}
