package sql

import (
	"strings"
	"testing"

	"patchindex/internal/catalog"
	"patchindex/internal/plan"
	"patchindex/internal/storage"
	"patchindex/internal/vector"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	emp, err := storage.NewTable("emp", storage.NewSchema(
		storage.Column{Name: "id", Typ: vector.Int64},
		storage.Column{Name: "name", Typ: vector.String},
		storage.Column{Name: "dept_id", Typ: vector.Int64},
		storage.Column{Name: "salary", Typ: vector.Float64},
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	dept, err := storage.NewTable("dept", storage.NewSchema(
		storage.Column{Name: "id", Typ: vector.Int64},
		storage.Column{Name: "dname", Typ: vector.String},
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	return cat
}

func bindQuery(t *testing.T, cat *catalog.Catalog, q string) plan.Node {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b := &Binder{Cat: cat}
	node, err := b.BindSelect(stmt.(*SelectStmt))
	if err != nil {
		t.Fatalf("bind %q: %v", q, err)
	}
	return node
}

func bindErr(t *testing.T, cat *catalog.Catalog, q string) error {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	b := &Binder{Cat: cat}
	_, err = b.BindSelect(stmt.(*SelectStmt))
	if err == nil {
		t.Fatalf("bind %q should fail", q)
	}
	return err
}

func schemaNames(n plan.Node) []string {
	var out []string
	for _, c := range n.Schema() {
		out = append(out, c.Name)
	}
	return out
}

func TestBindSimpleProjection(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT name, salary FROM emp")
	names := schemaNames(n)
	if len(names) != 2 || names[0] != "name" || names[1] != "salary" {
		t.Errorf("schema = %v", names)
	}
	if n.Schema()[0].SourceTable != "emp" || n.Schema()[0].SourceCol != "name" {
		t.Error("provenance lost")
	}
}

func TestBindStar(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT * FROM emp")
	if len(n.Schema()) != 4 {
		t.Errorf("star schema = %v", schemaNames(n))
	}
}

func TestBindColumnPruning(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT name FROM emp WHERE salary > 10")
	// Walk to the scan and confirm it reads only name+salary.
	var scan *plan.ScanNode
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.ScanNode); ok {
			scan = s
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if scan == nil {
		t.Fatal("no scan found")
	}
	if len(scan.Cols) != 2 {
		t.Errorf("scan columns = %v (want pruned to 2)", scan.Cols)
	}
}

func TestBindAlias(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT e.name AS who FROM emp e WHERE e.id > 0")
	if schemaNames(n)[0] != "who" {
		t.Errorf("alias = %v", schemaNames(n))
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	cat := testCatalog(t)
	err := bindErr(t, cat, "SELECT id FROM emp JOIN dept ON dept_id = dept.id")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestBindUnknowns(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, "SELECT nosuch FROM emp")
	bindErr(t, cat, "SELECT name FROM nosuchtable")
	bindErr(t, cat, "SELECT x.name FROM emp e")
}

func TestBindJoin(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT emp.name, dname FROM emp JOIN dept ON emp.dept_id = dept.id")
	// Find the join node.
	var join *plan.JoinNode
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if j, ok := n.(*plan.JoinNode); ok {
			join = j
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if join == nil {
		t.Fatal("no join in plan")
	}
	// Swapped ON order must also bind.
	bindQuery(t, cat, "SELECT emp.name FROM emp JOIN dept ON dept.id = emp.dept_id")
}

func TestBindAggregates(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT dept_id, COUNT(*) AS n, SUM(salary) AS total FROM emp GROUP BY dept_id")
	names := schemaNames(n)
	if len(names) != 3 || names[1] != "n" || names[2] != "total" {
		t.Errorf("agg schema = %v", names)
	}
	// Non-grouped column in select list fails.
	err := bindErr(t, cat, "SELECT name, COUNT(*) FROM emp GROUP BY dept_id")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("unexpected error %v", err)
	}
	// Star with aggregation fails.
	bindErr(t, cat, "SELECT *, COUNT(*) FROM emp GROUP BY dept_id")
}

func TestBindHaving(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT dept_id FROM emp GROUP BY dept_id HAVING COUNT(*) > 3 AND dept_id < 10")
	if len(schemaNames(n)) != 1 {
		t.Errorf("schema = %v", schemaNames(n))
	}
	// HAVING referencing an aggregate not in the select list is fine; the
	// plan must contain a Filter above the Aggregate.
	text := plan.Explain(n)
	if !strings.Contains(text, "Filter") || !strings.Contains(text, "Aggregate") {
		t.Errorf("plan missing having filter:\n%s", text)
	}
}

func TestBindDistinct(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT DISTINCT dept_id FROM emp")
	agg, ok := n.(*plan.AggregateNode)
	if !ok || !agg.IsDistinct() {
		t.Errorf("distinct should become an AggregateNode, got:\n%s", plan.Explain(n))
	}
}

func TestBindOrderLimit(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT name FROM emp ORDER BY name DESC LIMIT 5")
	if _, ok := n.(*plan.LimitNode); !ok {
		t.Fatalf("top should be limit:\n%s", plan.Explain(n))
	}
	// Ordering by a non-projected column is supported via hidden sort
	// columns; the output schema must still contain only the select list.
	n2 := bindQuery(t, cat, "SELECT name FROM emp ORDER BY salary")
	if got := schemaNames(n2); len(got) != 1 || got[0] != "name" {
		t.Errorf("hidden order column leaked into schema: %v", got)
	}
	// But not above DISTINCT (ambiguous semantics in SQL).
	bindErr(t, cat, "SELECT DISTINCT name FROM emp ORDER BY salary")
}

func TestBindCountDistinct(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT COUNT(DISTINCT name) FROM emp")
	agg, ok := n.(*plan.AggregateNode)
	if !ok {
		// identity projection elided or not — find the aggregate
		var found *plan.AggregateNode
		var walk func(plan.Node)
		walk = func(n plan.Node) {
			if a, ok := n.(*plan.AggregateNode); ok {
				found = a
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(n)
		agg = found
	}
	if agg == nil || len(agg.Aggs) != 1 {
		t.Fatalf("no aggregate found:\n%s", plan.Explain(n))
	}
}

func TestBindWhereType(t *testing.T) {
	cat := testCatalog(t)
	err := bindErr(t, cat, "SELECT name FROM emp WHERE salary + 1")
	if !strings.Contains(err.Error(), "boolean") {
		t.Errorf("expected boolean error, got %v", err)
	}
}

func TestBindArithProjection(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT salary * 2 AS double_pay FROM emp")
	col := n.Schema()[0]
	if col.Name != "double_pay" || col.Typ != vector.Float64 {
		t.Errorf("computed column = %+v", col)
	}
	if col.SourceTable != "" {
		t.Error("computed column must not claim provenance")
	}
}

func TestBindDuplicateAggregatesShareSpec(t *testing.T) {
	cat := testCatalog(t)
	n := bindQuery(t, cat, "SELECT COUNT(*) AS a, COUNT(*) AS b FROM emp")
	// Both select items resolve to the same aggregate spec.
	text := plan.Explain(n)
	if strings.Count(text, "COUNT(*)") != 1 {
		t.Errorf("duplicate aggregate should be computed once:\n%s", text)
	}
}
