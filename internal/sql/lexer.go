// Package sql implements the SQL front-end of the engine: a lexer, a
// recursive-descent parser for the dialect subset the evaluation needs, and
// a binder that turns statements into logical plans against the catalog.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // one of ( ) , . ; * = < > <= >= <> + - / %
)

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased
	Pos  int    // byte offset in the input
}

// keywords recognized by the lexer (value irrelevant).
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"ASC": true, "DESC": true, "JOIN": true, "INNER": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "IS": true,
	"AS": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INSERT": true,
	"INTO": true, "VALUES": true, "PARTITIONS": true, "SORTKEY": true,
	"PATCHINDEX": true, "UNIQUE": true, "SORTED": true, "THRESHOLD": true,
	"KIND": true, "IDENTIFIER": true, "BITMAP": true, "AUTO": true,
	"FORCE": true, "EXPLAIN": true, "ANALYZE": true, "SHOW": true, "TABLES": true,
	"PATCHINDEXES": true, "TRUE": true, "FALSE": true, "LEFT": true,
	"OUTER": true, "DATE": true, "COPY": true, "HEADER": true, "WITH": true,
	"ALTER": true, "TUNER": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// unexpected characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start})
			}
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' && !seenDot) {
				if input[i] == '.' {
					// Lookahead: "1." followed by non-digit is number then dot.
					if i+1 >= n || input[i+1] < '0' || input[i+1] > '9' {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokSymbol, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokSymbol, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokSymbol, Text: "<>", Pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		case strings.IndexByte("(),.;*=+-/%", c) >= 0:
			toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || unicode.IsLetter(rune(c))
}
