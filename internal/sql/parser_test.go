package sql

import (
	"strings"
	"testing"

	"patchindex/internal/vector"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE x >= 1.5 AND y <> 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "SELECT" || kinds[0] != TokKeyword {
		t.Errorf("first token %v %q", kinds[0], texts[0])
	}
	found := false
	for i, tx := range texts {
		if tx == "it's" && kinds[i] == TokString {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped string not lexed: %v", texts)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT 1 -- trailing comment\n, 2")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, tok := range toks {
		if tok.Kind == TokNumber {
			n++
		}
	}
	if n != 2 {
		t.Errorf("numbers = %d", n)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("bad character must fail")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("bare ! must fail")
	}
}

func TestLexIdentCase(t *testing.T) {
	toks, err := Lex("MyColumn")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "mycolumn" {
		t.Errorf("identifiers must lower-case: %v", toks[0])
	}
}

func parseSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	return sel
}

func TestParseSelectFull(t *testing.T) {
	sel := parseSelect(t, `SELECT DISTINCT a, COUNT(*) AS n FROM t1 x
		JOIN t2 ON x.k = t2.k
		WHERE a > 5 AND b IS NOT NULL
		GROUP BY a HAVING COUNT(*) > 2
		ORDER BY a DESC LIMIT 10;`)
	if !sel.Distinct || len(sel.Items) != 2 {
		t.Error("distinct/items wrong")
	}
	if sel.From.Name != "t1" || sel.From.Alias != "x" {
		t.Errorf("from = %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Table.Name != "t2" {
		t.Errorf("joins = %+v", sel.Joins)
	}
	if sel.Joins[0].Left.Table != "x" || sel.Joins[0].Left.Name != "k" {
		t.Errorf("join left = %+v", sel.Joins[0].Left)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("where/group/having missing")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t")
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Error("star item expected")
	}
	if sel.Limit != -1 {
		t.Error("limit default should be -1")
	}
}

func TestParseAggregates(t *testing.T) {
	sel := parseSelect(t, "SELECT COUNT(DISTINCT c), SUM(x), MIN(y), MAX(z), COUNT(*) FROM t")
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Distinct || fc.Name != "COUNT" {
		t.Errorf("count distinct = %+v", fc)
	}
	if sel.Items[4].Expr.(*FuncCall).Star != true {
		t.Error("count(*) star missing")
	}
}

func TestParseExpressions(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE NOT (a + 1) * 2 >= b % 3 OR c = DATE '2020-01-02'")
	if sel.Where == nil {
		t.Fatal("where missing")
	}
	or, ok := sel.Where.(*BinOp)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op = %+v", sel.Where)
	}
	if _, ok := or.Left.(*NotExpr); !ok {
		t.Errorf("left = %T", or.Left)
	}
	eq := or.Right.(*BinOp)
	lit := eq.Right.(*Lit)
	if lit.Val.Typ != vector.Date {
		t.Errorf("date literal type = %v", lit.Val.Typ)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3")
	or := sel.Where.(*BinOp)
	if or.Op != "OR" {
		t.Fatalf("OR should bind loosest: %+v", or)
	}
	and := or.Left.(*BinOp)
	if and.Op != "AND" {
		t.Fatalf("AND inside OR: %+v", and)
	}
	// Arithmetic precedence: 1 + 2 * 3 parses as 1 + (2*3).
	sel = parseSelect(t, "SELECT a FROM t WHERE x = 1 + 2 * 3")
	eq := sel.Where.(*BinOp)
	add := eq.Right.(*BinOp)
	if add.Op != "+" {
		t.Fatalf("add = %+v", add)
	}
	if mul := add.Right.(*BinOp); mul.Op != "*" {
		t.Fatalf("mul = %+v", mul)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a > -5 AND b < -1.5")
	and := sel.Where.(*BinOp)
	l1 := and.Left.(*BinOp).Right.(*Lit)
	if l1.Val.I64 != -5 {
		t.Errorf("int literal = %v", l1.Val)
	}
	l2 := and.Right.(*BinOp).Right.(*Lit)
	if l2.Val.F64 != -1.5 {
		t.Errorf("float literal = %v", l2.Val)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE, d BOOLEAN, e DATE) PARTITIONS 8 SORTKEY a")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "t" || len(ct.Columns) != 5 || ct.Partitions != 8 || ct.SortKey != "a" {
		t.Errorf("create table = %+v", ct)
	}
	if ct.Columns[4].Typ != vector.Date {
		t.Error("date column type")
	}
	if _, err := Parse("CREATE TABLE t (a BLOB)"); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestParseCreatePatchIndex(t *testing.T) {
	stmt, err := Parse("CREATE PATCHINDEX ON t(c) SORTED DESC THRESHOLD 0.25 KIND BITMAP FORCE")
	if err != nil {
		t.Fatal(err)
	}
	pi := stmt.(*CreatePatchIndexStmt)
	if pi.Table != "t" || pi.Column != "c" || pi.Unique || !pi.Descending ||
		pi.Threshold != 0.25 || pi.Kind != "bitmap" || !pi.Force {
		t.Errorf("patchindex = %+v", pi)
	}
	stmt, err = Parse("CREATE PATCHINDEX ON t(c) UNIQUE")
	if err != nil {
		t.Fatal(err)
	}
	pi = stmt.(*CreatePatchIndexStmt)
	if !pi.Unique || pi.Threshold != 1.0 || pi.Kind != "auto" {
		t.Errorf("defaults = %+v", pi)
	}
	if _, err := Parse("CREATE PATCHINDEX ON t(c)"); err == nil {
		t.Error("missing UNIQUE/SORTED must fail")
	}
	if _, err := Parse("CREATE PATCHINDEX ON t(c) UNIQUE THRESHOLD 2.0"); err == nil {
		t.Error("threshold > 1 must fail")
	}
}

func TestParseDropAndShow(t *testing.T) {
	stmt, err := Parse("DROP TABLE t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropTableStmt).Name != "t" {
		t.Error("drop table name")
	}
	stmt, err = Parse("DROP PATCHINDEX ON t(c)")
	if err != nil {
		t.Fatal(err)
	}
	dp := stmt.(*DropPatchIndexStmt)
	if dp.Table != "t" || dp.Column != "c" {
		t.Errorf("drop patchindex = %+v", dp)
	}
	if _, err := Parse("SHOW TABLES"); err != nil {
		t.Error(err)
	}
	if _, err := Parse("SHOW PATCHINDEXES"); err != nil {
		t.Error(err)
	}
	if _, err := Parse("SHOW NONSENSE"); err == nil {
		t.Error("unknown SHOW must fail")
	}
}

func TestParseShowAlertsAndTimeseries(t *testing.T) {
	stmt, err := Parse("SHOW ALERTS")
	if err != nil {
		t.Fatal(err)
	}
	if sh := stmt.(*ShowStmt); sh.What != "alerts" {
		t.Errorf("show = %+v", sh)
	}
	stmt, err = Parse("SHOW TIMESERIES FOR index.emp.s.nsc.patch_ratio")
	if err != nil {
		t.Fatal(err)
	}
	sh := stmt.(*ShowStmt)
	if sh.What != "timeseries" || sh.Arg != "index.emp.s.nsc.patch_ratio" {
		t.Errorf("show timeseries = %+v", sh)
	}
	// Keyword-colliding segments ("table", "index") and quoted names parse.
	stmt, err = Parse("SHOW TIMESERIES FOR table.emp.zone_stale_rows")
	if err != nil {
		t.Fatal(err)
	}
	if sh := stmt.(*ShowStmt); sh.Arg != "table.emp.zone_stale_rows" {
		t.Errorf("keyword segment = %+v", sh)
	}
	stmt, err = Parse("SHOW TIMESERIES FOR 'hist.query_nanos.p99'")
	if err != nil {
		t.Fatal(err)
	}
	if sh := stmt.(*ShowStmt); sh.Arg != "hist.query_nanos.p99" {
		t.Errorf("quoted metric = %+v", sh)
	}
	if _, err := Parse("SHOW TIMESERIES"); err == nil {
		t.Error("SHOW TIMESERIES without FOR must fail")
	}
	if _, err := Parse("SHOW TIMESERIES FOR"); err == nil {
		t.Error("missing metric must fail")
	}
	if _, err := Parse("SHOW TIMESERIES FOR a..b"); err == nil {
		t.Error("empty metric segment must fail")
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Errorf("insert = %+v", ins)
	}
	if !ins.Rows[0][2].(*Lit).Val.Null {
		t.Error("NULL literal lost")
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*ExplainStmt); !ok {
		t.Errorf("got %T", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage",
		"INSERT INTO t (1)",
		"CREATE VIEW v",
		"DROP INDEX i",
		"SELECT COUNT( FROM t",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		} else if !strings.Contains(err.Error(), "sql:") {
			t.Errorf("Parse(%q) error lacks prefix: %v", q, err)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Error(err)
	}
	if _, err := Parse("SELECT a FROM t;;"); err == nil {
		t.Error("double semicolon should fail")
	}
}

func TestParseBoolLiterals(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE flag = TRUE OR other = FALSE")
	or := sel.Where.(*BinOp)
	if !or.Left.(*BinOp).Right.(*Lit).Val.B {
		t.Error("TRUE literal")
	}
	if or.Right.(*BinOp).Right.(*Lit).Val.B {
		t.Error("FALSE literal")
	}
}

func TestParseIsNull(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
	and := sel.Where.(*BinOp)
	l := and.Left.(*IsNullExpr)
	r := and.Right.(*IsNullExpr)
	if l.Negated || !r.Negated {
		t.Error("IS NULL / IS NOT NULL parsing wrong")
	}
}
