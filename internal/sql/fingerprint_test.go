package sql

import "testing"

// TestFingerprintSameShape verifies that statements differing only in their
// constants — literal values, IN-list length, VALUES row count, whitespace,
// comments, keyword/identifier case — map to one fingerprint.
func TestFingerprintSameShape(t *testing.T) {
	groups := [][]string{
		{
			"SELECT x FROM t WHERE y = 3",
			"SELECT x FROM t WHERE y = 42",
			"select X from T where Y = 7",
			"SELECT  x\n FROM t -- comment\n WHERE y = 3",
		},
		{
			"SELECT x FROM t WHERE y IN (1, 2, 3)",
			"SELECT x FROM t WHERE y IN (4)",
			"SELECT x FROM t WHERE y IN (9,8,7,6,5,4,3,2,1)",
		},
		{
			"INSERT INTO t VALUES (1, 'a'), (2, 'b')",
			"INSERT INTO t VALUES (9, 'zzz')",
			"INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z''q')",
		},
		{
			"SELECT name FROM u WHERE s = 'alice'",
			"SELECT name FROM u WHERE s = 'bob''s'",
			"SELECT name FROM u WHERE s = ''",
		},
		{
			"SELECT x FROM t WHERE y >= 1.5",
			"SELECT x FROM t WHERE y >= 2e9",
			"SELECT x FROM t WHERE y >= 10",
		},
	}
	for gi, g := range groups {
		base, baseNorm := Fingerprint(g[0])
		for _, q := range g[1:] {
			fp, norm := Fingerprint(q)
			if fp != base {
				t.Errorf("group %d: %q → %016x (%q), want %016x (%q) like %q",
					gi, q, fp, norm, base, baseNorm, g[0])
			}
		}
	}
}

// TestFingerprintDistinctShapes verifies that genuinely different statement
// shapes do not collide.
func TestFingerprintDistinctShapes(t *testing.T) {
	shapes := []string{
		"SELECT x FROM t WHERE y = 3",
		"SELECT x FROM t WHERE z = 3",
		"SELECT x FROM t WHERE y > 3",
		"SELECT x FROM t WHERE y = 3 AND z = 4",
		"SELECT x, z FROM t WHERE y = 3",
		"SELECT COUNT(DISTINCT x) FROM t",
		"SELECT x FROM t ORDER BY x",
		"SELECT x FROM t WHERE y = TRUE",
		"SELECT x FROM t WHERE y IS NULL",
		"INSERT INTO t VALUES (1)",
	}
	seen := map[uint64]string{}
	for _, q := range shapes {
		fp, norm := Fingerprint(q)
		if prev, ok := seen[fp]; ok {
			t.Errorf("collision: %q and %q both fingerprint to %016x (%q)", q, prev, fp, norm)
		}
		seen[fp] = q
	}
}

// TestFingerprintPreparedEqualsAdHoc: a statement executed via the prepared
// path fingerprints from the same original text, so it matches the ad-hoc
// spelling of the same shape.
func TestFingerprintPreparedEqualsAdHoc(t *testing.T) {
	adhoc, _ := Fingerprint("SELECT x FROM t WHERE y = 99")
	prepared, _ := Fingerprint("SELECT x FROM t WHERE y = 1")
	if adhoc != prepared {
		t.Fatalf("prepared shape fingerprint %016x != ad-hoc %016x", prepared, adhoc)
	}
}

// TestNormalizeRendering pins the normalized text format (it is shown in
// /workload and hashed, so accidental changes would orphan history).
func TestNormalizeRendering(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT X FROM T WHERE Y = 3", "select x from t where y = ?"},
		{"SELECT x FROM t WHERE y IN (1, 2, 3)", "select x from t where y in (?)"},
		{"INSERT INTO t VALUES (1, 'a'), (2, 'b')", "insert into t values (?)"},
		{"SELECT a.b FROM a", "select a.b from a"},
		{"SELECT x -- trailing comment", "select x"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestFingerprintNeverPanics feeds junk through the forgiving scanner.
func TestFingerprintNeverPanics(t *testing.T) {
	for _, q := range []string{"", "'", "'''", "((((", "SELECT 'unterminated", "1.2.3.4", "--", "@#$%"} {
		Fingerprint(q) // must not panic
	}
}

func BenchmarkFingerprint(b *testing.B) {
	q := "SELECT COUNT(DISTINCT c_email_address) FROM customer WHERE c_birth_year IN (1980, 1981, 1982)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fingerprint(q)
	}
}
