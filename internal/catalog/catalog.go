// Package catalog maintains the schema objects of the engine: tables and
// PatchIndexes. It is the registry that query planning consults to find
// approximate-constraint information for rewrites.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"patchindex/internal/patch"
	"patchindex/internal/storage"
)

// Catalog is a thread-safe registry of tables and PatchIndexes.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*storage.Table
	indexes map[string]*patch.Index // key: table "." column
	// epoch counts schema mutations (table or index add/drop). Readers that
	// cache derived state — the plan cache of the future, the tuner's planned
	// actions — revalidate when the epoch moved under them, so indexes can
	// appear and disappear in the background without stale decisions.
	epoch atomic.Uint64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*storage.Table),
		indexes: make(map[string]*patch.Index),
	}
}

// AddTable registers a table; the name must be unused.
func (c *Catalog) AddTable(t *storage.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name()]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name())
	}
	c.tables[t.Name()] = t
	c.epoch.Add(1)
	return nil
}

// Epoch returns the catalog's schema-mutation counter. It increments on
// every table or index registration/removal; equality of two observations
// means no schema object changed in between.
func (c *Catalog) Epoch() uint64 { return c.epoch.Load() }

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*storage.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %s", name)
	}
	return t, nil
}

// DropTable removes a table and all its PatchIndexes.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: unknown table %s", name)
	}
	delete(c.tables, name)
	for key, ix := range c.indexes {
		if ix.Table() == name {
			delete(c.indexes, key)
		}
	}
	c.epoch.Add(1)
	return nil
}

// TableNames returns the sorted names of all tables.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func indexKey(table, column string, constraint patch.Constraint) string {
	return fmt.Sprintf("%s.%s#%d", table, column, constraint)
}

// AddIndex registers a PatchIndex. A single table may hold several
// PatchIndexes on different columns — the design explicitly enables multiple
// (approximate) sort keys per table since the physical tuple order is never
// changed — and a single column may hold one index per constraint kind
// (e.g. nearly unique *and* nearly sorted).
func (c *Catalog) AddIndex(ix *patch.Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[ix.Table()]; !ok {
		return fmt.Errorf("catalog: index references unknown table %s", ix.Table())
	}
	key := indexKey(ix.Table(), ix.Column(), ix.Constraint())
	if _, ok := c.indexes[key]; ok {
		return fmt.Errorf("catalog: %s PatchIndex on %s.%s already exists", ix.Constraint(), ix.Table(), ix.Column())
	}
	c.indexes[key] = ix
	c.epoch.Add(1)
	return nil
}

// Index looks up any PatchIndex on table.column (NUC first), or nil.
func (c *Catalog) Index(table, column string) *patch.Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, constraint := range []patch.Constraint{patch.NearlyUnique, patch.NearlySorted} {
		if ix, ok := c.indexes[indexKey(table, column, constraint)]; ok {
			return ix
		}
	}
	return nil
}

// Lookup returns the PatchIndex on table.column with the given constraint,
// built or not, or nil.
func (c *Catalog) Lookup(table, column string, constraint patch.Constraint) *patch.Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.indexes[indexKey(table, column, constraint)]
}

// IndexFor returns the ready PatchIndex on table.column with the requested
// constraint, or nil. Query rewriting only uses fully built indexes.
func (c *Catalog) IndexFor(table, column string, constraint patch.Constraint) *patch.Index {
	ix := c.Lookup(table, column, constraint)
	if ix == nil || !ix.Ready() {
		return nil
	}
	return ix
}

// DropIndex removes every PatchIndex on table.column (any constraint).
func (c *Catalog) DropIndex(table, column string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := false
	for _, constraint := range []patch.Constraint{patch.NearlyUnique, patch.NearlySorted} {
		key := indexKey(table, column, constraint)
		if _, ok := c.indexes[key]; ok {
			delete(c.indexes, key)
			dropped = true
		}
	}
	if !dropped {
		return fmt.Errorf("catalog: no PatchIndex on %s.%s", table, column)
	}
	c.epoch.Add(1)
	return nil
}

// ZoneMapInfo pairs one table partition/column with its storage zone map
// entry — the introspection view of the planner's partition-pruning input.
type ZoneMapInfo struct {
	Table     string
	Partition int
	Column    string
	Entry     storage.ZoneMapEntry
}

// ZoneMaps returns the zone map entries of every partition and column of the
// named table, partition-major in schema column order.
func (c *Catalog) ZoneMaps(table string) ([]ZoneMapInfo, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	out := make([]ZoneMapInfo, 0, t.NumPartitions()*len(schema.Columns))
	for p := 0; p < t.NumPartitions(); p++ {
		for col, colDef := range schema.Columns {
			out = append(out, ZoneMapInfo{
				Table:     table,
				Partition: p,
				Column:    colDef.Name,
				Entry:     t.ZoneMap(p, col),
			})
		}
	}
	return out, nil
}

// Indexes returns all registered PatchIndexes, sorted by table and column.
func (c *Catalog) Indexes() []*patch.Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*patch.Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table() != out[j].Table() {
			return out[i].Table() < out[j].Table()
		}
		if out[i].Column() != out[j].Column() {
			return out[i].Column() < out[j].Column()
		}
		return out[i].Constraint() < out[j].Constraint()
	})
	return out
}
