package catalog

import (
	"testing"

	"patchindex/internal/patch"
	"patchindex/internal/storage"
	"patchindex/internal/vector"
)

func newTable(t *testing.T, name string) *storage.Table {
	t.Helper()
	tab, err := storage.NewTable(name, storage.NewSchema(storage.Column{Name: "c", Typ: vector.Int64}), 1)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func builtIndex(t *testing.T, table, col string, c patch.Constraint) *patch.Index {
	t.Helper()
	ix, err := patch.NewIndex(table, col, c, patch.Auto, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetPartition(0, nil, 0); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestTableRegistry(t *testing.T) {
	c := New()
	tab := newTable(t, "t")
	if err := c.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(tab); err == nil {
		t.Error("duplicate table must fail")
	}
	got, err := c.Table("t")
	if err != nil || got != tab {
		t.Errorf("lookup failed: %v", err)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table must fail")
	}
	names := c.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Errorf("names = %v", names)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestIndexRegistry(t *testing.T) {
	c := New()
	if err := c.AddTable(newTable(t, "t")); err != nil {
		t.Fatal(err)
	}
	nuc := builtIndex(t, "t", "c", patch.NearlyUnique)
	nsc := builtIndex(t, "t", "c", patch.NearlySorted)
	if err := c.AddIndex(nuc); err != nil {
		t.Fatal(err)
	}
	// Same column, different constraint: allowed.
	if err := c.AddIndex(nsc); err != nil {
		t.Fatalf("NUC+NSC on same column must be allowed: %v", err)
	}
	// Same constraint twice: rejected.
	if err := c.AddIndex(builtIndex(t, "t", "c", patch.NearlyUnique)); err == nil {
		t.Error("duplicate constraint index must fail")
	}
	// Unknown table rejected.
	if err := c.AddIndex(builtIndex(t, "zzz", "c", patch.NearlyUnique)); err == nil {
		t.Error("index on unknown table must fail")
	}
	if got := c.Lookup("t", "c", patch.NearlyUnique); got != nuc {
		t.Error("lookup NUC failed")
	}
	if got := c.Lookup("t", "c", patch.NearlySorted); got != nsc {
		t.Error("lookup NSC failed")
	}
	if got := c.IndexFor("t", "c", patch.NearlyUnique); got != nuc {
		t.Error("IndexFor should return built index")
	}
	if got := c.Index("t", "c"); got != nuc {
		t.Error("Index prefers NUC")
	}
	if got := c.Index("t", "zzz"); got != nil {
		t.Error("unknown column should be nil")
	}
	all := c.Indexes()
	if len(all) != 2 || all[0].Constraint() != patch.NearlyUnique {
		t.Errorf("Indexes() = %v", all)
	}
	// Drop removes both constraints on the column.
	if err := c.DropIndex("t", "c"); err != nil {
		t.Fatal(err)
	}
	if c.Lookup("t", "c", patch.NearlyUnique) != nil || c.Lookup("t", "c", patch.NearlySorted) != nil {
		t.Error("drop left indexes behind")
	}
	if err := c.DropIndex("t", "c"); err == nil {
		t.Error("dropping a non-existent index must fail")
	}
}

func TestIndexForRequiresReady(t *testing.T) {
	c := New()
	if err := c.AddTable(newTable(t, "t")); err != nil {
		t.Fatal(err)
	}
	unbuilt, err := patch.NewIndex("t", "c", patch.NearlyUnique, patch.Auto, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(unbuilt); err != nil {
		t.Fatal(err)
	}
	if c.IndexFor("t", "c", patch.NearlyUnique) != nil {
		t.Error("IndexFor must not return an unbuilt index")
	}
	if c.Lookup("t", "c", patch.NearlyUnique) != unbuilt {
		t.Error("Lookup should return unbuilt indexes")
	}
}

func TestDropTableDropsIndexes(t *testing.T) {
	c := New()
	if err := c.AddTable(newTable(t, "t")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(builtIndex(t, "t", "c", patch.NearlyUnique)); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if len(c.Indexes()) != 0 {
		t.Error("table drop must remove its indexes")
	}
}
