package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Manifest is the checkpoint catalog written alongside segment files: which
// tables exist, which segment file holds each partition, which PatchIndexes
// were defined, and which WAL file holds the post-checkpoint suffix. A
// checkpoint writes the new manifest with an atomic rename, which is the
// commit point — the old WAL and superseded segment generations become
// orphans the moment the rename lands, and a crash on either side of it
// recovers from a consistent (old or new) pairing of manifest + WAL.
type Manifest struct {
	Version    int             `json:"version"`
	Generation uint64          `json:"generation"`
	WALFile    string          `json:"wal_file"`
	Tables     []ManifestTable `json:"tables"`
	Indexes    []ManifestIndex `json:"indexes"`
}

// ManifestTable records one table's schema and segment files.
type ManifestTable struct {
	Name       string              `json:"name"`
	SortKey    string              `json:"sort_key,omitempty"`
	Columns    []ManifestColumn    `json:"columns"`
	Partitions []ManifestPartition `json:"partitions"`
}

// ManifestColumn is one schema column (Typ is a vector.Type).
type ManifestColumn struct {
	Name string `json:"name"`
	Typ  uint8  `json:"typ"`
}

// ManifestPartition points one partition at its segment file (relative to
// the manifest's directory).
type ManifestPartition struct {
	File string `json:"file"`
	Rows int    `json:"rows"`
}

// ManifestIndex records one PatchIndex definition — enough to restore it via
// the materialized file or rediscovery, mirroring the WAL's create-index
// record. The patches themselves are never in the manifest (Section V: keep
// the log slim; the same applies here).
type ManifestIndex struct {
	Table      string  `json:"table"`
	Column     string  `json:"column"`
	Constraint uint8   `json:"constraint"`
	Kind       uint8   `json:"kind"`
	Threshold  float64 `json:"threshold"`
	Descending bool    `json:"descending,omitempty"`
}

// SaveManifest writes the manifest atomically: temp file, fsync, rename,
// fsync directory.
func SaveManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: manifest encode: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: manifest write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("catalog: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("catalog: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("catalog: manifest close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("catalog: manifest rename: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadManifest reads the manifest at path; a missing file returns (nil, nil)
// — a fresh data directory.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("catalog: manifest read: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("catalog: manifest parse: %w", err)
	}
	return &m, nil
}
