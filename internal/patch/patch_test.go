package patch

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestChooseCrossover(t *testing.T) {
	// 1/64 of the rows or fewer: identifier; above: bitmap.
	if Choose(0, 1000) != Identifier {
		t.Error("empty set should be identifier")
	}
	if Choose(15, 1000) != Identifier { // 1.5 % <= 1.5625 %
		t.Error("below crossover should be identifier")
	}
	if Choose(16, 1000) != Bitmap { // 1.6 % > 1.5625 %
		t.Error("above crossover should be bitmap")
	}
	if Choose(5, 0) != Identifier {
		t.Error("zero rows defaults to identifier")
	}
}

func TestKindString(t *testing.T) {
	if Identifier.String() != "identifier" || Bitmap.String() != "bitmap" || Auto.String() != "auto" {
		t.Error("kind names wrong")
	}
}

func TestIdentifierSetBasics(t *testing.T) {
	s, err := NewIdentifierSet([]uint64{1, 5, 9}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != Identifier || s.Cardinality() != 3 || s.NumRows() != 12 {
		t.Error("metadata wrong")
	}
	if s.MemoryBytes() != 24 {
		t.Errorf("memory = %d, want 24 (8 bytes per id)", s.MemoryBytes())
	}
	for _, tc := range []struct {
		row  uint64
		want bool
	}{{0, false}, {1, true}, {5, true}, {9, true}, {10, false}, {11, false}} {
		if got := s.Contains(tc.row); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.row, got, tc.want)
		}
	}
}

func TestIdentifierSetValidation(t *testing.T) {
	if _, err := NewIdentifierSet([]uint64{3, 1}, 10); err == nil {
		t.Error("unsorted ids must be rejected")
	}
	if _, err := NewIdentifierSet([]uint64{2, 2}, 10); err == nil {
		t.Error("duplicate ids must be rejected")
	}
	if _, err := NewIdentifierSet([]uint64{10}, 10); err == nil {
		t.Error("out-of-range id must be rejected")
	}
	if _, err := NewIdentifierSet(nil, 10); err != nil {
		t.Errorf("empty set is fine: %v", err)
	}
}

func TestBitmapSetBasics(t *testing.T) {
	s, err := NewBitmapSet([]uint64{0, 63, 64, 127}, 130)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != Bitmap || s.Cardinality() != 4 || s.NumRows() != 130 {
		t.Error("metadata wrong")
	}
	// 130 rows -> 3 words -> 24 bytes.
	if s.MemoryBytes() != 24 {
		t.Errorf("memory = %d, want 24", s.MemoryBytes())
	}
	for _, row := range []uint64{0, 63, 64, 127} {
		if !s.Contains(row) {
			t.Errorf("Contains(%d) = false", row)
		}
	}
	for _, row := range []uint64{1, 62, 65, 128, 129, 1000} {
		if s.Contains(row) {
			t.Errorf("Contains(%d) = true", row)
		}
	}
}

func TestBitmapSetValidation(t *testing.T) {
	if _, err := NewBitmapSet([]uint64{5, 5}, 10); err == nil {
		t.Error("duplicate ids must be rejected")
	}
	if _, err := NewBitmapSet([]uint64{7, 3}, 10); err == nil {
		t.Error("unsorted ids must be rejected")
	}
	if _, err := NewBitmapSet([]uint64{10}, 10); err == nil {
		t.Error("out-of-range id must be rejected")
	}
}

func TestBuildAuto(t *testing.T) {
	// 10 of 1000 rows = 1 % -> identifier.
	ids := make([]uint64, 10)
	for i := range ids {
		ids[i] = uint64(i * 50)
	}
	s, err := Build(Auto, ids, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != Identifier {
		t.Errorf("auto picked %v for 1%%", s.Kind())
	}
	// 100 of 1000 = 10 % -> bitmap.
	ids = make([]uint64, 100)
	for i := range ids {
		ids[i] = uint64(i * 10)
	}
	s, err = Build(Auto, ids, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != Bitmap {
		t.Errorf("auto picked %v for 10%%", s.Kind())
	}
	if _, err := Build(Kind(99), nil, 10); err == nil {
		t.Error("unknown kind must fail")
	}
}

// iterAll drains an iterator into a slice.
func iterAll(it *Iter) []uint64 {
	var out []uint64
	for it.Valid() {
		out = append(out, it.Row())
		it.Next()
	}
	return out
}

func TestIterBothKinds(t *testing.T) {
	ids := []uint64{2, 3, 64, 200, 511}
	for _, kind := range []Kind{Identifier, Bitmap} {
		s, err := Build(kind, ids, 512)
		if err != nil {
			t.Fatal(err)
		}
		got := iterAll(s.Iter(0))
		if len(got) != len(ids) {
			t.Fatalf("%v: iterated %v", kind, got)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("%v: iterated %v, want %v", kind, got, ids)
			}
		}
		// Iterator positioned mid-way.
		got = iterAll(s.Iter(64))
		if len(got) != 3 || got[0] != 64 {
			t.Fatalf("%v: Iter(64) = %v", kind, got)
		}
		got = iterAll(s.Iter(512))
		if len(got) != 0 {
			t.Fatalf("%v: Iter(past end) = %v", kind, got)
		}
	}
}

func TestIterSeek(t *testing.T) {
	ids := []uint64{10, 20, 30, 40}
	for _, kind := range []Kind{Identifier, Bitmap} {
		s, _ := Build(kind, ids, 50)
		it := s.Iter(0)
		it.Seek(25)
		if !it.Valid() || it.Row() != 30 {
			t.Errorf("%v: Seek(25) -> %v", kind, it.Row())
		}
		// Seek never moves backwards.
		it.Seek(5)
		if it.Row() != 30 {
			t.Errorf("%v: backwards seek moved the iterator", kind)
		}
		it.Seek(40)
		if it.Row() != 40 {
			t.Errorf("%v: Seek(40) -> %v", kind, it.Row())
		}
		it.Seek(41)
		if it.Valid() {
			t.Errorf("%v: Seek past last patch should invalidate", kind)
		}
		it.Seek(1) // seeking an exhausted iterator is a no-op
		if it.Valid() {
			t.Errorf("%v: exhausted iterator revived", kind)
		}
	}
}

// TestSetEquivalence: identifier and bitmap representations must agree on
// Contains, Cardinality and full iteration for random patch sets.
func TestSetEquivalence(t *testing.T) {
	f := func(raw []uint16, numRowsRaw uint16) bool {
		numRows := int(numRowsRaw)%2000 + 1
		seen := map[uint64]bool{}
		var ids []uint64
		for _, r := range raw {
			id := uint64(r) % uint64(numRows)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		is, err := Build(Identifier, ids, numRows)
		if err != nil {
			return false
		}
		bs, err := Build(Bitmap, ids, numRows)
		if err != nil {
			return false
		}
		if is.Cardinality() != bs.Cardinality() {
			return false
		}
		for row := uint64(0); row < uint64(numRows); row++ {
			if is.Contains(row) != bs.Contains(row) {
				return false
			}
		}
		ia, ba := iterAll(is.Iter(0)), iterAll(bs.Iter(0))
		if len(ia) != len(ba) {
			return false
		}
		for i := range ia {
			if ia[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSeekEquivalence: Seek must behave identically for both kinds.
func TestSeekEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const numRows = 4096
	var ids []uint64
	for i := 0; i < numRows; i++ {
		if rng.Intn(10) == 0 {
			ids = append(ids, uint64(i))
		}
	}
	is, _ := Build(Identifier, ids, numRows)
	bs, _ := Build(Bitmap, ids, numRows)
	ii, bi := is.Iter(0), bs.Iter(0)
	pos := uint64(0)
	for k := 0; k < 200; k++ {
		pos += uint64(rng.Intn(40))
		ii.Seek(pos)
		bi.Seek(pos)
		if ii.Valid() != bi.Valid() {
			t.Fatalf("validity diverged at seek %d", pos)
		}
		if ii.Valid() && ii.Row() != bi.Row() {
			t.Fatalf("rows diverged at seek %d: %d vs %d", pos, ii.Row(), bi.Row())
		}
		if ii.Valid() && rng.Intn(2) == 0 {
			ii.Next()
			bi.Next()
			if ii.Valid() != bi.Valid() || (ii.Valid() && ii.Row() != bi.Row()) {
				t.Fatalf("next diverged after seek %d", pos)
			}
		}
	}
}

func TestIndexLifecycle(t *testing.T) {
	ix, err := NewIndex("t", "c", NearlyUnique, Auto, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Ready() {
		t.Error("index with no partitions built must not be ready")
	}
	if err := ix.SetPartition(0, []uint64{1, 2}, 100); err != nil {
		t.Fatal(err)
	}
	if ix.Ready() {
		t.Error("one of two partitions built: not ready")
	}
	if err := ix.SetPartition(1, []uint64{0}, 100); err != nil {
		t.Fatal(err)
	}
	if !ix.Ready() {
		t.Error("both partitions built: ready")
	}
	if ix.Cardinality() != 3 || ix.NumRows() != 200 {
		t.Errorf("cardinality %d rows %d", ix.Cardinality(), ix.NumRows())
	}
	if got := ix.ExceptionRate(); got != 3.0/200 {
		t.Errorf("rate %v", got)
	}
	if ix.Table() != "t" || ix.Column() != "c" || ix.Constraint() != NearlyUnique {
		t.Error("metadata wrong")
	}
	if ix.Partition(5) != nil || ix.Partition(-1) != nil {
		t.Error("out-of-range partition should be nil")
	}
	if ix.MemoryBytes() <= 0 {
		t.Error("memory should be positive")
	}
	if ix.String() == "" {
		t.Error("string rendering empty")
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex("t", "c", NearlyUnique, Auto, 1.5, 1); err == nil {
		t.Error("threshold > 1 must fail")
	}
	if _, err := NewIndex("t", "c", NearlyUnique, Auto, -0.1, 1); err == nil {
		t.Error("threshold < 0 must fail")
	}
	if _, err := NewIndex("t", "c", NearlyUnique, Auto, 0.5, 0); err == nil {
		t.Error("zero partitions must fail")
	}
	ix, _ := NewIndex("t", "c", NearlySorted, Auto, 0.5, 1)
	if err := ix.SetPartition(3, nil, 10); err == nil {
		t.Error("partition out of range must fail")
	}
	if err := ix.SetPartition(0, []uint64{5, 1}, 10); err == nil {
		t.Error("unsorted patch ids must fail")
	}
}

func TestIndexDescending(t *testing.T) {
	ix, _ := NewIndex("t", "c", NearlySorted, Auto, 0.5, 1)
	if ix.Descending() {
		t.Error("default ascending")
	}
	ix.SetDescending(true)
	if !ix.Descending() {
		t.Error("descending flag lost")
	}
}

func TestConstraintString(t *testing.T) {
	if NearlyUnique.String() != "NEARLY UNIQUE" || NearlySorted.String() != "NEARLY SORTED" {
		t.Error("constraint names wrong")
	}
}

func TestEmptySetIterators(t *testing.T) {
	for _, kind := range []Kind{Identifier, Bitmap} {
		s, err := Build(kind, nil, 100)
		if err != nil {
			t.Fatal(err)
		}
		it := s.Iter(0)
		if it.Valid() {
			t.Errorf("%v: empty set iterator valid", kind)
		}
		it.Next() // must not panic
		it.Seek(50)
	}
	// Zero-row partition.
	s, err := Build(Bitmap, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(0) {
		t.Error("empty bitmap contains rows")
	}
}
