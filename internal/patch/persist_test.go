package patch

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []Kind{Identifier, Bitmap} {
		ix, err := NewIndex("tab", "col", NearlySorted, kind, 0.25, 3)
		if err != nil {
			t.Fatal(err)
		}
		ix.SetDescending(true)
		rng := rand.New(rand.NewSource(int64(kind)))
		for p := 0; p < 3; p++ {
			n := 100 + rng.Intn(500)
			var ids []uint64
			for i := 0; i < n; i++ {
				if rng.Intn(7) == 0 {
					ids = append(ids, uint64(i))
				}
			}
			if err := ix.SetPartition(p, ids, n); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join(dir, kind.String()+".pidx")
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Table() != "tab" || got.Column() != "col" || got.Constraint() != NearlySorted ||
			got.RequestedKind() != kind || got.Threshold() != 0.25 || !got.Descending() {
			t.Errorf("%v: metadata mismatch: %s", kind, got)
		}
		if got.Cardinality() != ix.Cardinality() || got.NumRows() != ix.NumRows() {
			t.Fatalf("%v: payload counts differ", kind)
		}
		for p := 0; p < 3; p++ {
			a, b := ix.Partition(p), got.Partition(p)
			if a.NumRows() != b.NumRows() {
				t.Fatalf("%v: partition %d rows differ", kind, p)
			}
			for row := uint64(0); row < uint64(a.NumRows()); row++ {
				if a.Contains(row) != b.Contains(row) {
					t.Fatalf("%v: membership differs at p%d/%d", kind, p, row)
				}
			}
		}
	}
}

func TestSaveUnbuiltFails(t *testing.T) {
	ix, _ := NewIndex("t", "c", NearlyUnique, Auto, 1, 2)
	if err := ix.Save(filepath.Join(t.TempDir(), "x.pidx")); err == nil {
		t.Error("saving an unbuilt index must fail")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.pidx")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	ix, _ := NewIndex("t", "c", NearlyUnique, Auto, 1, 1)
	if err := ix.SetPartition(0, []uint64{1, 5}, 10); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "x.pidx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: checksum must catch it.
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("expected ErrBadIndexFile, got %v", err)
	}
	// Garbage file.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("expected ErrBadIndexFile for garbage, got %v", err)
	}
	// Truncated file.
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrBadIndexFile) {
		t.Errorf("expected ErrBadIndexFile for truncation, got %v", err)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pidx")
	ix, _ := NewIndex("t", "c", NearlyUnique, Auto, 1, 1)
	if err := ix.SetPartition(0, []uint64{1}, 4); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ix2, _ := NewIndex("t", "c", NearlyUnique, Auto, 1, 1)
	if err := ix2.SetPartition(0, []uint64{0, 2}, 6); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 2 || got.NumRows() != 6 {
		t.Error("overwrite did not take effect")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind")
	}
}

func TestLoadEmptySets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pidx")
	ix, _ := NewIndex("t", "c", NearlySorted, Bitmap, 0.5, 2)
	if err := ix.SetPartition(0, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := ix.SetPartition(1, nil, 100); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 0 || got.NumRows() != 100 {
		t.Error("empty sets round trip")
	}
}
