package patch

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Constraint is the kind of approximate constraint a PatchIndex maintains.
type Constraint uint8

const (
	// NearlyUnique marks a nearly unique column (NUC, Definition III.4).
	NearlyUnique Constraint = iota
	// NearlySorted marks a nearly sorted column (NSC, Definition III.5).
	NearlySorted
)

// String names the constraint.
func (c Constraint) String() string {
	switch c {
	case NearlyUnique:
		return "NEARLY UNIQUE"
	case NearlySorted:
		return "NEARLY SORTED"
	default:
		return fmt.Sprintf("Constraint(%d)", uint8(c))
	}
}

// Index is a PatchIndex: the set of patches P_c for one column of one table,
// split per partition (Section VI-A2: "they support partitioning by creating
// a PatchIndex for each partition separately"). It is an in-memory structure;
// its creation is logged to the WAL but its patches are not (Section V).
type Index struct {
	mu         sync.RWMutex
	table      string
	column     string
	constraint Constraint
	kind       Kind // requested representation (may be Auto)
	threshold  float64
	sets       []Set // one per partition, nil until built
	descending bool  // NSC only: order relation is >= instead of <=
	origin     string
}

// NewIndex creates an empty PatchIndex shell for a table with numPartitions
// partitions. Sets are attached per partition via SetPartition (the
// "AppendToIndex" post-query of Section V fills them).
func NewIndex(table, column string, c Constraint, kind Kind, threshold float64, numPartitions int) (*Index, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("patch: index %s.%s: threshold %v outside [0,1]", table, column, threshold)
	}
	if numPartitions < 1 {
		return nil, fmt.Errorf("patch: index %s.%s: need at least one partition", table, column)
	}
	return &Index{
		table:      table,
		column:     column,
		constraint: c,
		kind:       kind,
		threshold:  threshold,
		sets:       make([]Set, numPartitions),
	}, nil
}

// Table returns the indexed table name.
func (ix *Index) Table() string { return ix.table }

// Column returns the indexed column name.
func (ix *Index) Column() string { return ix.column }

// Constraint returns the maintained constraint kind.
func (ix *Index) Constraint() Constraint { return ix.constraint }

// RequestedKind returns the representation requested at creation (possibly
// Auto).
func (ix *Index) RequestedKind() Kind { return ix.kind }

// Threshold returns the classification threshold the index was created with.
func (ix *Index) Threshold() float64 { return ix.threshold }

// SetDescending marks a NSC index as maintaining a descending order.
func (ix *Index) SetDescending(d bool) { ix.descending = d }

// SetOrigin records who created the index: "manual" (CREATE PATCHINDEX, the
// default) or "auto" (the background tuner).
func (ix *Index) SetOrigin(o string) {
	ix.mu.Lock()
	ix.origin = o
	ix.mu.Unlock()
}

// Origin reports who created the index ("manual" when never set).
func (ix *Index) Origin() string {
	ix.mu.RLock()
	o := ix.origin
	ix.mu.RUnlock()
	if o == "" {
		return "manual"
	}
	return o
}

// Descending reports whether a NSC index maintains a descending order.
func (ix *Index) Descending() bool { return ix.descending }

// NumPartitions returns the partition count the index was created for.
func (ix *Index) NumPartitions() int { return len(ix.sets) }

// SetPartition attaches the patch set of one partition. ids must be sorted
// unique local row ids; numRows is the partition size at build time.
func (ix *Index) SetPartition(part int, ids []uint64, numRows int) error {
	if part < 0 || part >= len(ix.sets) {
		return fmt.Errorf("patch: index %s.%s: partition %d out of range", ix.table, ix.column, part)
	}
	s, err := Build(ix.kind, ids, numRows)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	ix.sets[part] = s
	ix.mu.Unlock()
	return nil
}

// SetPartitions attaches the patch sets of all partitions, building the
// physical representations (identifier lists or bitmaps) on up to workers
// goroutines — the combine step of a parallel CREATE PATCHINDEX. perPart[p]
// must be sorted unique local row ids for partition p; rows[p] is that
// partition's size. With workers <= 1 it degenerates to a serial loop.
func (ix *Index) SetPartitions(perPart [][]uint64, rows []int, workers int) error {
	if len(perPart) != len(ix.sets) || len(rows) != len(ix.sets) {
		return fmt.Errorf("patch: index %s.%s: SetPartitions needs %d partitions, got %d/%d",
			ix.table, ix.column, len(ix.sets), len(perPart), len(rows))
	}
	if workers > len(perPart) {
		workers = len(perPart)
	}
	if workers <= 1 {
		for p := range perPart {
			if err := ix.SetPartition(p, perPart[p], rows[p]); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(perPart))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1) - 1)
				if p >= len(perPart) {
					return
				}
				errs[p] = ix.SetPartition(p, perPart[p], rows[p])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Partition returns the patch set of partition part (nil if not built yet).
func (ix *Index) Partition(part int) Set {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if part < 0 || part >= len(ix.sets) {
		return nil
	}
	return ix.sets[part]
}

// Ready reports whether every partition has a built patch set.
func (ix *Index) Ready() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, s := range ix.sets {
		if s == nil {
			return false
		}
	}
	return true
}

// Cardinality returns the total |P_c| across partitions.
func (ix *Index) Cardinality() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, s := range ix.sets {
		if s != nil {
			n += s.Cardinality()
		}
	}
	return n
}

// NumRows returns the total covered row count across partitions.
func (ix *Index) NumRows() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, s := range ix.sets {
		if s != nil {
			n += s.NumRows()
		}
	}
	return n
}

// ExceptionRate returns |P_c|/|R| over all built partitions.
func (ix *Index) ExceptionRate() float64 {
	rows := ix.NumRows()
	if rows == 0 {
		return 0
	}
	return float64(ix.Cardinality()) / float64(rows)
}

// MemoryBytes returns the total patch payload size across partitions.
func (ix *Index) MemoryBytes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, s := range ix.sets {
		if s != nil {
			n += s.MemoryBytes()
		}
	}
	return n
}

// UpdatePartition merges additional patch row ids into a partition's set and
// extends its covered row count. addIDs may reference both newly appended
// rows and existing rows (condition NUC2 can retroactively turn an old row
// into a patch when a duplicate of its value arrives). The set is rebuilt in
// O(|P_c|) — no table scan — which is the "lightweight support for table
// inserts" the paper's future work calls for.
func (ix *Index) UpdatePartition(part int, addIDs []uint64, numRows int) error {
	if part < 0 || part >= len(ix.sets) {
		return fmt.Errorf("patch: index %s.%s: partition %d out of range", ix.table, ix.column, part)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.sets[part]
	if old == nil {
		return fmt.Errorf("patch: index %s.%s: partition %d not built", ix.table, ix.column, part)
	}
	if numRows < old.NumRows() {
		return fmt.Errorf("patch: index %s.%s: partition %d cannot shrink (%d < %d)",
			ix.table, ix.column, part, numRows, old.NumRows())
	}
	// Merge the existing sorted ids with the (sorted, deduplicated) additions.
	add := append([]uint64{}, addIDs...)
	sortUint64(add)
	merged := make([]uint64, 0, old.Cardinality()+len(add))
	it := old.Iter(0)
	ai := 0
	for it.Valid() || ai < len(add) {
		switch {
		case !it.Valid():
			merged = appendUnique(merged, add[ai])
			ai++
		case ai >= len(add) || it.Row() < add[ai]:
			merged = appendUnique(merged, it.Row())
			it.Next()
		case it.Row() == add[ai]:
			ai++ // already a patch
		default:
			merged = appendUnique(merged, add[ai])
			ai++
		}
	}
	s, err := Build(ix.kind, merged, numRows)
	if err != nil {
		return err
	}
	ix.sets[part] = s
	return nil
}

func appendUnique(ids []uint64, id uint64) []uint64 {
	if n := len(ids); n > 0 && ids[n-1] == id {
		return ids
	}
	return append(ids, id)
}

func sortUint64(a []uint64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// String renders a one-line summary.
func (ix *Index) String() string {
	return fmt.Sprintf("PatchIndex(%s.%s %s kind=%s |P|=%d rate=%.4f)",
		ix.table, ix.column, ix.constraint, ix.kind, ix.Cardinality(), ix.ExceptionRate())
}
