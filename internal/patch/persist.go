package patch

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file implements the first alternative to the purely in-memory design
// discussed in Section V of the paper: "the index data could be materialized
// to disk, which has the advantages of durability, easy recovery and
// reducing the main memory consumption". Materialized indexes restore in
// O(|P_c|) instead of re-running discovery over the data; the engine falls
// back to discovery when no (valid) materialization exists.
//
// File format (little endian), CRC32-IEEE over everything before the
// trailing checksum:
//
//	magic      uint32 "PIX1"
//	table      string (u32 length + bytes)
//	column     string
//	constraint u8
//	kind       u8   (requested representation)
//	threshold  f64
//	descending u8
//	partitions u32
//	per partition:
//	  numRows  u64
//	  setKind  u8   (0 identifier, 1 bitmap)
//	  payload:
//	    identifier: count u64, ids []u64
//	    bitmap:     words u64, words []u64, cardinality u64
//	crc32      uint32

const persistMagic uint32 = 0x50495831 // "PIX1"

// ErrBadIndexFile reports a corrupt or mismatching materialized index file.
var ErrBadIndexFile = errors.New("patch: bad index file")

// crcWriter tees writes through a CRC32.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// Save materializes the index to the given file path (atomically via a
// temporary file). The index must be fully built.
func (ix *Index) Save(path string) error {
	if !ix.Ready() {
		return fmt.Errorf("patch: cannot save unbuilt index %s.%s", ix.table, ix.column)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("patch: save: %w", err)
	}
	defer os.Remove(tmp)
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcWriter{w: bw}

	writeU32 := func(x uint32) error { return binary.Write(cw, binary.LittleEndian, x) }
	writeU64 := func(x uint64) error { return binary.Write(cw, binary.LittleEndian, x) }
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := cw.Write([]byte(s))
		return err
	}
	writeByte := func(b byte) error { _, err := cw.Write([]byte{b}); return err }
	boolByte := func(b bool) byte {
		if b {
			return 1
		}
		return 0
	}

	if err := writeU32(persistMagic); err != nil {
		return err
	}
	if err := writeStr(ix.table); err != nil {
		return err
	}
	if err := writeStr(ix.column); err != nil {
		return err
	}
	if err := writeByte(byte(ix.constraint)); err != nil {
		return err
	}
	if err := writeByte(byte(ix.kind)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, ix.threshold); err != nil {
		return err
	}
	if err := writeByte(boolByte(ix.descending)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(ix.sets))); err != nil {
		return err
	}
	ix.mu.RLock()
	sets := append([]Set{}, ix.sets...)
	ix.mu.RUnlock()
	for _, s := range sets {
		if err := writeU64(uint64(s.NumRows())); err != nil {
			return err
		}
		switch set := s.(type) {
		case *IdentifierSet:
			if err := writeByte(0); err != nil {
				return err
			}
			if err := writeU64(uint64(len(set.ids))); err != nil {
				return err
			}
			for _, id := range set.ids {
				if err := writeU64(id); err != nil {
					return err
				}
			}
		case *BitmapSet:
			if err := writeByte(1); err != nil {
				return err
			}
			if err := writeU64(uint64(len(set.words))); err != nil {
				return err
			}
			for _, w := range set.words {
				if err := writeU64(w); err != nil {
					return err
				}
			}
			if err := writeU64(uint64(set.card)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("patch: save: unknown set type %T", s)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// crcReader tees reads through a CRC32.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Load reads a materialized index from path.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := &crcReader{r: bufio.NewReaderSize(f, 1<<20)}

	readU32 := func() (uint32, error) {
		var x uint32
		err := binary.Read(cr, binary.LittleEndian, &x)
		return x, err
	}
	readU64 := func() (uint64, error) {
		var x uint64
		err := binary.Read(cr, binary.LittleEndian, &x)
		return x, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("%w: oversized string", ErrBadIndexFile)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	readByte := func() (byte, error) {
		var b [1]byte
		_, err := io.ReadFull(cr, b[:])
		return b[0], err
	}

	magic, err := readU32()
	if err != nil || magic != persistMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadIndexFile)
	}
	table, err := readStr()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	column, err := readStr()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	cb, err := readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	kb, err := readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	var threshold float64
	if err := binary.Read(cr, binary.LittleEndian, &threshold); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	db, err := readByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	nParts, err := readU32()
	if err != nil || nParts == 0 || nParts > 1<<16 {
		return nil, fmt.Errorf("%w: bad partition count", ErrBadIndexFile)
	}
	ix, err := NewIndex(table, column, Constraint(cb), Kind(kb), threshold, int(nParts))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	ix.SetDescending(db == 1)
	for p := 0; p < int(nParts); p++ {
		numRows, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
		}
		setKind, err := readByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
		}
		switch setKind {
		case 0:
			count, err := readU64()
			if err != nil || count > numRows {
				return nil, fmt.Errorf("%w: bad id count", ErrBadIndexFile)
			}
			ids := make([]uint64, count)
			for i := range ids {
				if ids[i], err = readU64(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
				}
			}
			set, err := NewIdentifierSet(ids, int(numRows))
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
			}
			ix.sets[p] = set
		case 1:
			nWords, err := readU64()
			if err != nil || nWords != uint64((numRows+63)/64) {
				return nil, fmt.Errorf("%w: bad word count", ErrBadIndexFile)
			}
			words := make([]uint64, nWords)
			for i := range words {
				if words[i], err = readU64(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
				}
			}
			card, err := readU64()
			if err != nil || card > numRows {
				return nil, fmt.Errorf("%w: bad cardinality", ErrBadIndexFile)
			}
			ix.sets[p] = &BitmapSet{words: words, numRows: int(numRows), card: int(card)}
		default:
			return nil, fmt.Errorf("%w: unknown set kind %d", ErrBadIndexFile, setKind)
		}
	}
	sum := cr.crc
	var stored uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrBadIndexFile)
	}
	if stored != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadIndexFile)
	}
	return ix, nil
}
