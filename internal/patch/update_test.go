package patch

import (
	"math/rand"
	"sort"
	"testing"
)

func builtIndex(t *testing.T, kind Kind, ids []uint64, numRows int) *Index {
	t.Helper()
	ix, err := NewIndex("t", "c", NearlyUnique, kind, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetPartition(0, ids, numRows); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestUpdatePartitionAppendsNewPatches(t *testing.T) {
	for _, kind := range []Kind{Identifier, Bitmap, Auto} {
		ix := builtIndex(t, kind, []uint64{2, 5}, 10)
		if err := ix.UpdatePartition(0, []uint64{12, 10}, 15); err != nil {
			t.Fatal(err)
		}
		set := ix.Partition(0)
		if set.NumRows() != 15 || set.Cardinality() != 4 {
			t.Fatalf("%v: rows=%d card=%d", kind, set.NumRows(), set.Cardinality())
		}
		for _, want := range []uint64{2, 5, 10, 12} {
			if !set.Contains(want) {
				t.Errorf("%v: missing %d", kind, want)
			}
		}
		if set.Contains(11) || set.Contains(14) {
			t.Errorf("%v: spurious members", kind)
		}
	}
}

func TestUpdatePartitionRetroactiveIDs(t *testing.T) {
	// Adding an id BELOW existing patches (retroactive NUC2 patching).
	ix := builtIndex(t, Identifier, []uint64{7}, 10)
	if err := ix.UpdatePartition(0, []uint64{1}, 10); err != nil {
		t.Fatal(err)
	}
	set := ix.Partition(0)
	if !set.Contains(1) || !set.Contains(7) || set.Cardinality() != 2 {
		t.Error("retroactive id not merged")
	}
}

func TestUpdatePartitionDeduplicates(t *testing.T) {
	ix := builtIndex(t, Identifier, []uint64{3}, 10)
	if err := ix.UpdatePartition(0, []uint64{3, 3, 4, 4}, 10); err != nil {
		t.Fatal(err)
	}
	if ix.Cardinality() != 2 {
		t.Errorf("cardinality = %d, want 2", ix.Cardinality())
	}
}

func TestUpdatePartitionValidation(t *testing.T) {
	ix := builtIndex(t, Identifier, []uint64{3}, 10)
	if err := ix.UpdatePartition(2, nil, 10); err == nil {
		t.Error("out-of-range partition must fail")
	}
	if err := ix.UpdatePartition(0, nil, 5); err == nil {
		t.Error("shrinking must fail")
	}
	if err := ix.UpdatePartition(0, []uint64{99}, 10); err == nil {
		t.Error("id beyond numRows must fail")
	}
	unbuilt, _ := NewIndex("t", "c", NearlyUnique, Auto, 1, 1)
	if err := unbuilt.UpdatePartition(0, nil, 10); err == nil {
		t.Error("unbuilt partition must fail")
	}
}

func TestUpdatePartitionAutoRepicksRepresentation(t *testing.T) {
	// Auto kind: a small set grows past the 1/64 crossover and must flip to
	// bitmap on rebuild.
	ix := builtIndex(t, Auto, []uint64{0}, 1000)
	if ix.Partition(0).Kind() != Identifier {
		t.Fatal("small set should start as identifier")
	}
	var add []uint64
	for i := uint64(1); i <= 100; i++ {
		add = append(add, i)
	}
	if err := ix.UpdatePartition(0, add, 1000); err != nil {
		t.Fatal(err)
	}
	if ix.Partition(0).Kind() != Bitmap {
		t.Error("auto representation should flip to bitmap past the crossover")
	}
}

// TestUpdatePartitionProperty: merging random additions must equal the set
// union, for both representations.
func TestUpdatePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		numRows := 200 + rng.Intn(800)
		mkIDs := func(n, limit int) []uint64 {
			seen := map[uint64]bool{}
			var out []uint64
			for i := 0; i < n; i++ {
				id := uint64(rng.Intn(limit))
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		initial := mkIDs(rng.Intn(50), numRows)
		newRows := numRows + rng.Intn(200)
		additions := mkIDs(rng.Intn(50), newRows)

		kind := Identifier
		if rng.Intn(2) == 0 {
			kind = Bitmap
		}
		ix := builtIndex(t, kind, initial, numRows)
		if err := ix.UpdatePartition(0, additions, newRows); err != nil {
			t.Fatal(err)
		}
		want := map[uint64]bool{}
		for _, id := range initial {
			want[id] = true
		}
		for _, id := range additions {
			want[id] = true
		}
		set := ix.Partition(0)
		if set.Cardinality() != len(want) {
			t.Fatalf("cardinality %d, want %d", set.Cardinality(), len(want))
		}
		for id := uint64(0); id < uint64(newRows); id++ {
			if set.Contains(id) != want[id] {
				t.Fatalf("membership mismatch at %d", id)
			}
		}
	}
}
