// Package patch implements the PatchIndex data structure of the paper: a
// per-column set of patches P_c holding the row ids of tuples that violate an
// approximate constraint (nearly-unique or nearly-sorted column). Two
// physical representations are provided, exactly as in Section V of the
// paper:
//
//   - the identifier-based approach stores the 64-bit row ids of all patch
//     tuples in a sorted array (sparse; 64 bit per patch), and
//   - the bitmap-based approach stores one bit per table row (dense;
//     independent of |P_c|).
//
// The expected memory crossover is |P_c|/|R| = 1/64 ≈ 1.56 %, which Choose
// implements. Sets are immutable after Build and are safe for concurrent
// readers.
package patch

import (
	"fmt"
	"math/bits"
	"sort"
)

// Kind selects the physical representation of a patch set.
type Kind uint8

const (
	// Identifier stores sorted 64-bit row ids (sparse).
	Identifier Kind = iota
	// Bitmap stores one bit per row of the indexed partition (dense).
	Bitmap
	// Auto picks Identifier below the 1/64 crossover, Bitmap above.
	Auto
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Identifier:
		return "identifier"
	case Bitmap:
		return "bitmap"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CrossoverRate is the exception rate at which the bitmap representation
// becomes smaller than the identifier representation: 1 bit vs 64 bit per
// element means identifiers win while |P_c|/|R| <= 1/64 ≈ 1.56 % (Section V).
const CrossoverRate = 1.0 / 64.0

// Choose resolves Auto into a concrete representation for a partition with
// numRows rows and numPatches patches.
func Choose(numPatches, numRows int) Kind {
	if numRows == 0 {
		return Identifier
	}
	if float64(numPatches)/float64(numRows) <= CrossoverRate {
		return Identifier
	}
	return Bitmap
}

// Set is an immutable set of patch row ids for one partition of a column.
// Row ids are partition-local. Iteration order is ascending, which the
// PatchSelect merge strategy (Algorithm 1) relies on.
type Set interface {
	// Kind reports the physical representation.
	Kind() Kind
	// Contains reports whether row is a patch.
	Contains(row uint64) bool
	// Cardinality returns |P_c| for this partition.
	Cardinality() int
	// NumRows returns the number of rows of the partition the set covers.
	NumRows() int
	// MemoryBytes returns the memory footprint of the patch payload.
	MemoryBytes() int
	// Iter returns an iterator positioned at the first patch >= start.
	Iter(start uint64) *Iter
}

// Iter walks a patch set in ascending row-id order. It is the "patch
// pointer" of Algorithm 1.
type Iter struct {
	ids  []uint64 // identifier-based
	pos  int
	bm   *BitmapSet // bitmap-based
	next uint64
	done bool
}

// Valid reports whether the iterator currently points at a patch.
func (it *Iter) Valid() bool { return !it.done }

// Row returns the row id the iterator points at. Only valid if Valid().
func (it *Iter) Row() uint64 {
	if it.ids != nil {
		return it.ids[it.pos]
	}
	return it.next
}

// Next advances to the next patch.
func (it *Iter) Next() {
	if it.done {
		return
	}
	if it.ids != nil {
		it.pos++
		if it.pos >= len(it.ids) {
			it.done = true
		}
		return
	}
	r, ok := it.bm.nextSet(it.next + 1)
	if !ok {
		it.done = true
		return
	}
	it.next = r
}

// Seek advances the iterator to the first patch >= row. It never moves
// backwards. This implements the paper's scan-range support: "adjusting the
// patch pointer in order to skip patches outside the ranges".
func (it *Iter) Seek(row uint64) {
	if it.done {
		return
	}
	if it.ids != nil {
		if it.pos < len(it.ids) && it.ids[it.pos] >= row {
			return
		}
		// Binary search in the remaining suffix.
		rest := it.ids[it.pos:]
		off := sort.Search(len(rest), func(i int) bool { return rest[i] >= row })
		it.pos += off
		if it.pos >= len(it.ids) {
			it.done = true
		}
		return
	}
	if it.next >= row {
		return
	}
	r, ok := it.bm.nextSet(row)
	if !ok {
		it.done = true
		return
	}
	it.next = r
}

// IdentifierSet is the identifier-based (sparse) representation: a sorted
// array of 64-bit row ids.
type IdentifierSet struct {
	ids     []uint64
	numRows int
}

var _ Set = (*IdentifierSet)(nil)

// NewIdentifierSet builds an identifier set from sorted, unique row ids
// covering a partition of numRows rows. It returns an error if ids are out
// of order, duplicated or out of range.
func NewIdentifierSet(ids []uint64, numRows int) (*IdentifierSet, error) {
	for i, id := range ids {
		if i > 0 && ids[i-1] >= id {
			return nil, fmt.Errorf("patch: identifier set: ids not strictly ascending at %d (%d >= %d)", i, ids[i-1], id)
		}
		if id >= uint64(numRows) {
			return nil, fmt.Errorf("patch: identifier set: id %d out of range (numRows=%d)", id, numRows)
		}
	}
	return &IdentifierSet{ids: ids, numRows: numRows}, nil
}

// Kind returns Identifier.
func (s *IdentifierSet) Kind() Kind { return Identifier }

// Contains reports membership via binary search.
func (s *IdentifierSet) Contains(row uint64) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= row })
	return i < len(s.ids) && s.ids[i] == row
}

// Cardinality returns the number of patches.
func (s *IdentifierSet) Cardinality() int { return len(s.ids) }

// NumRows returns the covered partition size.
func (s *IdentifierSet) NumRows() int { return s.numRows }

// MemoryBytes returns 8 bytes per stored identifier.
func (s *IdentifierSet) MemoryBytes() int { return 8 * len(s.ids) }

// Iter returns an iterator starting at the first patch >= start.
func (s *IdentifierSet) Iter(start uint64) *Iter {
	pos := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= start })
	return &Iter{ids: s.ids, pos: pos, done: pos >= len(s.ids)}
}

// IDs exposes the sorted id array (shared; callers must not mutate).
func (s *IdentifierSet) IDs() []uint64 { return s.ids }

// BitmapSet is the bitmap-based (dense) representation: one bit per row.
type BitmapSet struct {
	words   []uint64
	numRows int
	card    int
}

var _ Set = (*BitmapSet)(nil)

// NewBitmapSet builds a bitmap set from sorted unique row ids.
func NewBitmapSet(ids []uint64, numRows int) (*BitmapSet, error) {
	s := &BitmapSet{words: make([]uint64, (numRows+63)/64), numRows: numRows}
	var prev uint64
	for i, id := range ids {
		if i > 0 && prev >= id {
			return nil, fmt.Errorf("patch: bitmap set: ids not strictly ascending at %d", i)
		}
		if id >= uint64(numRows) {
			return nil, fmt.Errorf("patch: bitmap set: id %d out of range (numRows=%d)", id, numRows)
		}
		s.words[id>>6] |= 1 << (id & 63)
		prev = id
	}
	s.card = len(ids)
	return s, nil
}

// Kind returns Bitmap.
func (s *BitmapSet) Kind() Kind { return Bitmap }

// Contains tests the bit for row.
func (s *BitmapSet) Contains(row uint64) bool {
	if row >= uint64(s.numRows) {
		return false
	}
	return s.words[row>>6]&(1<<(row&63)) != 0
}

// Cardinality returns the number of set bits.
func (s *BitmapSet) Cardinality() int { return s.card }

// NumRows returns the covered partition size.
func (s *BitmapSet) NumRows() int { return s.numRows }

// MemoryBytes returns the bitmap payload size: one bit per row, rounded up
// to whole words.
func (s *BitmapSet) MemoryBytes() int { return 8 * len(s.words) }

// Iter returns an iterator starting at the first set bit >= start.
func (s *BitmapSet) Iter(start uint64) *Iter {
	r, ok := s.nextSet(start)
	return &Iter{bm: s, next: r, done: !ok}
}

// nextSet finds the first set bit at position >= from.
func (s *BitmapSet) nextSet(from uint64) (uint64, bool) {
	if from >= uint64(s.numRows) {
		return 0, false
	}
	w := from >> 6
	word := s.words[w] >> (from & 63)
	if word != 0 {
		return from + uint64(bits.TrailingZeros64(word)), true
	}
	for w++; int(w) < len(s.words); w++ {
		if s.words[w] != 0 {
			return w<<6 + uint64(bits.TrailingZeros64(s.words[w])), true
		}
	}
	return 0, false
}

// Build constructs a Set of the requested kind from sorted unique partition
// local row ids. Kind Auto applies the 1/64 crossover rule.
func Build(kind Kind, ids []uint64, numRows int) (Set, error) {
	k := kind
	if k == Auto {
		k = Choose(len(ids), numRows)
	}
	switch k {
	case Identifier:
		return NewIdentifierSet(ids, numRows)
	case Bitmap:
		return NewBitmapSet(ids, numRows)
	default:
		return nil, fmt.Errorf("patch: unknown set kind %v", kind)
	}
}
