package serving

import (
	"container/list"
	"sync"
	"sync/atomic"

	"patchindex/internal/obs"
)

// DefaultPlanCacheSize is the total bound-plan entries kept when the cache
// is enabled without an explicit size.
const DefaultPlanCacheSize = 512

const planShards = 16

// PlanCache is a sharded, bounded map from (statement text, options,
// epoch) to an opaque bound-plan payload. Entries are valid for exactly
// one catalog epoch: a Get with a different epoch evicts the entry and
// reports a miss, so DDL, tuner create/drop/rebuild, and any other
// epoch-bumping event invalidates every cached plan at once without
// scanning. Each shard keeps an LRU list bounded to size/planShards.
type PlanCache struct {
	enabled atomic.Bool
	perShrd int
	shards  [planShards]planShard

	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	invalidations *obs.Counter
	entries       *obs.Gauge
}

type planShard struct {
	mu      sync.Mutex
	buckets map[uint64][]*planEntry
	lru     *list.List // front = most recently used; values are *planEntry
	n       int
}

type planEntry struct {
	hash  uint64
	text  string
	opts  OptsKey
	epoch uint64
	value any
	elem  *list.Element
}

// NewPlanCache creates a disabled plan cache holding up to size entries
// (DefaultPlanCacheSize when size <= 0) and registers its metrics. A nil
// registry gets a private one so the cache is always safe to use.
func NewPlanCache(size int, reg *obs.Registry) *PlanCache {
	if size <= 0 {
		size = DefaultPlanCacheSize
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	per := size / planShards
	if per < 1 {
		per = 1
	}
	c := &PlanCache{
		perShrd:       per,
		hits:          reg.Counter("serving.plan_cache.hits"),
		misses:        reg.Counter("serving.plan_cache.misses"),
		evictions:     reg.Counter("serving.plan_cache.evictions"),
		invalidations: reg.Counter("serving.plan_cache.invalidations"),
		entries:       reg.Gauge("serving.plan_cache.entries"),
	}
	for i := range c.shards {
		c.shards[i].buckets = make(map[uint64][]*planEntry)
		c.shards[i].lru = list.New()
	}
	return c
}

// SetEnabled flips the cache on or off. Disabling does not drop entries;
// they simply stop being served (and age out by LRU once re-enabled).
func (c *PlanCache) SetEnabled(on bool) {
	if c != nil {
		c.enabled.Store(on)
	}
}

// Enabled reports whether the cache serves entries. This is the entire
// disabled-path cost: one atomic load (the CI bench gates it under
// 50ns/stmt together with the call overhead).
func (c *PlanCache) Enabled() bool { return c != nil && c.enabled.Load() }

// Get returns the payload cached for (text, opts) at the given epoch.
// An entry from an older epoch is dropped and counted as an invalidation.
// The caller must read epoch under whatever synchronization makes the
// payload safe to execute (the engine holds shared table latches).
func (c *PlanCache) Get(text string, opts OptsKey, epoch uint64) (any, bool) {
	if !c.Enabled() {
		return nil, false
	}
	h := hashText(text)
	sh := &c.shards[h%planShards]
	sh.mu.Lock()
	for _, e := range sh.buckets[h] {
		if e.opts != opts || e.text != text {
			continue
		}
		if e.epoch != epoch {
			sh.remove(e)
			sh.mu.Unlock()
			c.invalidations.Inc()
			c.misses.Inc()
			c.entries.Add(-1)
			return nil, false
		}
		sh.lru.MoveToFront(e.elem)
		v := e.value
		sh.mu.Unlock()
		c.hits.Inc()
		return v, true
	}
	sh.mu.Unlock()
	c.misses.Inc()
	return nil, false
}

// Put stores the payload for (text, opts) at the given epoch, replacing
// any same-key entry and evicting the shard's LRU tail when over budget.
func (c *PlanCache) Put(text string, opts OptsKey, epoch uint64, value any) {
	if !c.Enabled() {
		return
	}
	h := hashText(text)
	sh := &c.shards[h%planShards]
	var added, evicted int
	sh.mu.Lock()
	for _, e := range sh.buckets[h] {
		if e.opts == opts && e.text == text {
			e.epoch = epoch
			e.value = value
			sh.lru.MoveToFront(e.elem)
			sh.mu.Unlock()
			return
		}
	}
	e := &planEntry{hash: h, text: text, opts: opts, epoch: epoch, value: value}
	sh.buckets[h] = append(sh.buckets[h], e)
	e.elem = sh.lru.PushFront(e)
	sh.n++
	added++
	for sh.n > c.perShrd {
		tail := sh.lru.Back()
		if tail == nil {
			break
		}
		sh.remove(tail.Value.(*planEntry))
		evicted++
	}
	sh.mu.Unlock()
	c.entries.Add(int64(added - evicted))
	for i := 0; i < evicted; i++ {
		c.evictions.Inc()
	}
}

// Len returns the number of cached entries across all shards.
func (c *PlanCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].n
		c.shards[i].mu.Unlock()
	}
	return n
}

// PlanCacheStats is the /stats serving section for the plan cache.
type PlanCacheStats struct {
	Enabled       bool   `json:"enabled"`
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	return PlanCacheStats{
		Enabled:       c.Enabled(),
		Entries:       c.Len(),
		Hits:          uint64(c.hits.Value()),
		Misses:        uint64(c.misses.Value()),
		Evictions:     uint64(c.evictions.Value()),
		Invalidations: uint64(c.invalidations.Value()),
	}
}

// remove unlinks e from the shard. Caller holds sh.mu.
func (sh *planShard) remove(e *planEntry) {
	bucket := sh.buckets[e.hash]
	for i, b := range bucket {
		if b == e {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(sh.buckets, e.hash)
	} else {
		sh.buckets[e.hash] = bucket
	}
	sh.lru.Remove(e.elem)
	sh.n--
}
