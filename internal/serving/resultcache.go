package serving

import (
	"container/list"
	"sync"
	"sync/atomic"

	"patchindex/internal/obs"
)

// DefaultResultCacheBytes is the byte budget used when the result cache is
// enabled without an explicit size.
const DefaultResultCacheBytes = 32 << 20 // 32 MiB

// ResultCache caches materialized read-only results keyed on (statement
// text, options, per-table version stamp vector). A Get whose stamp vector
// differs from the cached one proves the underlying tables changed; the
// entry is dropped and the miss is counted as a stale eviction, so readers
// can never observe pre-append rows. Eviction is LRU under a global byte
// budget, with optional per-tenant byte budgets enforced first (a noisy
// tenant evicts its own entries before anyone else's). Entries larger than
// maxEntry (budget/8) bypass the cache entirely.
//
// Unlike the plan cache, the result cache is a single mutex-protected
// structure: it is only consulted for statements that were already going to
// execute, so a hit saves orders of magnitude more than the lock costs.
type ResultCache struct {
	enabled atomic.Bool

	mu        sync.Mutex
	budget    int64
	maxEntry  int64
	used      int64
	buckets   map[uint64][]*resultEntry
	lru       *list.List // front = most recently used; values are *resultEntry
	perTenant map[string]int64
	tenantCap map[string]int64

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	stale     *obs.Counter
	bypass    *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
}

type resultEntry struct {
	hash     uint64
	text     string
	opts     OptsKey
	versions []uint64
	tenant   string
	bytes    int64
	value    any
	elem     *list.Element
}

// NewResultCache creates a disabled result cache with the given byte
// budget (DefaultResultCacheBytes when <= 0) and registers its metrics.
func NewResultCache(budgetBytes int64, reg *obs.Registry) *ResultCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultResultCacheBytes
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &ResultCache{
		budget:    budgetBytes,
		maxEntry:  budgetBytes / 8,
		buckets:   make(map[uint64][]*resultEntry),
		lru:       list.New(),
		perTenant: make(map[string]int64),
		tenantCap: make(map[string]int64),
		hits:      reg.Counter("serving.result_cache.hits"),
		misses:    reg.Counter("serving.result_cache.misses"),
		evictions: reg.Counter("serving.result_cache.evictions"),
		stale:     reg.Counter("serving.result_cache.stale_evictions"),
		bypass:    reg.Counter("serving.result_cache.bypass"),
		bytes:     reg.Gauge("serving.result_cache.bytes"),
		entries:   reg.Gauge("serving.result_cache.entries"),
	}
}

// SetEnabled flips the cache on or off.
func (c *ResultCache) SetEnabled(on bool) {
	if c != nil {
		c.enabled.Store(on)
	}
}

// Enabled reports whether the cache serves entries (one atomic load).
func (c *ResultCache) Enabled() bool { return c != nil && c.enabled.Load() }

// SetTenantBudget caps the bytes one tenant's results may occupy (0 removes
// the cap; the global budget still applies). The server wires QoS memory
// limits through here at startup.
func (c *ResultCache) SetTenantBudget(tenant string, bytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if bytes <= 0 {
		delete(c.tenantCap, tenant)
	} else {
		c.tenantCap[tenant] = bytes
	}
	c.mu.Unlock()
}

// Get returns the result cached for (text, opts) if its version stamp
// vector still matches; a mismatch drops the stale entry. The caller must
// read versions under shared table latches so writers (which hold the
// exclusive latch while bumping versions) cannot interleave.
func (c *ResultCache) Get(text string, opts OptsKey, versions []uint64) (any, bool) {
	if !c.Enabled() {
		return nil, false
	}
	h := hashText(text)
	c.mu.Lock()
	for _, e := range c.buckets[h] {
		if e.opts != opts || e.text != text {
			continue
		}
		if !versionsEqual(e.versions, versions) {
			c.removeLocked(e)
			c.mu.Unlock()
			c.stale.Inc()
			c.misses.Inc()
			return nil, false
		}
		c.lru.MoveToFront(e.elem)
		v := e.value
		c.mu.Unlock()
		c.hits.Inc()
		return v, true
	}
	c.mu.Unlock()
	c.misses.Inc()
	return nil, false
}

// Put stores a result for (text, opts) at the given version stamps,
// attributing its bytes to tenant. Oversized results are bypassed.
func (c *ResultCache) Put(text string, opts OptsKey, versions []uint64, tenant string, size int64, value any) {
	if !c.Enabled() {
		return
	}
	if size <= 0 {
		size = 1
	}
	if size > c.maxEntry {
		c.bypass.Inc()
		return
	}
	h := hashText(text)
	evicted := 0
	c.mu.Lock()
	for _, e := range c.buckets[h] {
		if e.opts == opts && e.text == text {
			c.removeLocked(e)
			break
		}
	}
	if cap, ok := c.tenantCap[tenant]; ok {
		for c.perTenant[tenant]+size > cap {
			if !c.evictOldestLocked(tenant) {
				break
			}
			evicted++
		}
		if c.perTenant[tenant]+size > cap {
			c.mu.Unlock()
			c.evictions.Add(int64(evicted))
			c.bypass.Inc()
			return
		}
	}
	for c.used+size > c.budget {
		if !c.evictOldestLocked("") {
			break
		}
		evicted++
	}
	vs := append([]uint64(nil), versions...)
	e := &resultEntry{hash: h, text: text, opts: opts, versions: vs, tenant: tenant, bytes: size, value: value}
	e.elem = c.lru.PushFront(e)
	c.buckets[h] = append(c.buckets[h], e)
	c.used += size
	c.perTenant[tenant] += size
	used, n := c.used, c.lru.Len()
	c.mu.Unlock()
	c.evictions.Add(int64(evicted))
	c.bytes.Set(used)
	c.entries.Set(int64(n))
}

// evictOldestLocked drops the least recently used entry, or the least
// recently used entry of the given tenant when tenant != "". It reports
// whether anything was evicted. Caller holds c.mu.
func (c *ResultCache) evictOldestLocked(tenant string) bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*resultEntry)
		if tenant != "" && e.tenant != tenant {
			continue
		}
		c.removeLocked(e)
		return true
	}
	return false
}

// removeLocked unlinks e and releases its byte accounting. Caller holds c.mu.
func (c *ResultCache) removeLocked(e *resultEntry) {
	bucket := c.buckets[e.hash]
	for i, b := range bucket {
		if b == e {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.buckets, e.hash)
	} else {
		c.buckets[e.hash] = bucket
	}
	c.lru.Remove(e.elem)
	c.used -= e.bytes
	c.perTenant[e.tenant] -= e.bytes
	if c.perTenant[e.tenant] <= 0 {
		delete(c.perTenant, e.tenant)
	}
	c.bytes.Set(c.used)
	c.entries.Set(int64(c.lru.Len()))
}

func versionsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ResultCacheStats is the /stats serving section for the result cache.
type ResultCacheStats struct {
	Enabled        bool             `json:"enabled"`
	Entries        int              `json:"entries"`
	Bytes          int64            `json:"bytes"`
	BudgetBytes    int64            `json:"budget_bytes"`
	Hits           uint64           `json:"hits"`
	Misses         uint64           `json:"misses"`
	Evictions      uint64           `json:"evictions"`
	StaleEvictions uint64           `json:"stale_evictions"`
	Bypassed       uint64           `json:"bypassed"`
	BytesByTenant  map[string]int64 `json:"bytes_by_tenant,omitempty"`
}

// Stats snapshots the cache counters and per-tenant byte accounting.
func (c *ResultCache) Stats() ResultCacheStats {
	if c == nil {
		return ResultCacheStats{}
	}
	c.mu.Lock()
	byTenant := make(map[string]int64, len(c.perTenant))
	for t, b := range c.perTenant {
		byTenant[t] = b
	}
	s := ResultCacheStats{
		Enabled:       c.Enabled(),
		Entries:       c.lru.Len(),
		Bytes:         c.used,
		BudgetBytes:   c.budget,
		BytesByTenant: byTenant,
	}
	c.mu.Unlock()
	s.Hits = uint64(c.hits.Value())
	s.Misses = uint64(c.misses.Value())
	s.Evictions = uint64(c.evictions.Value())
	s.StaleEvictions = uint64(c.stale.Value())
	s.Bypassed = uint64(c.bypass.Value())
	return s
}
