package serving

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"patchindex/internal/obs"
)

func TestPlanCacheBasic(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPlanCache(64, reg)
	opts := OptsKey{}

	if _, ok := c.Get("q1", opts, 1); ok {
		t.Fatal("disabled cache must miss")
	}
	c.Put("q1", opts, 1, "v1")
	if c.Len() != 0 {
		t.Fatal("disabled cache must not store")
	}

	c.SetEnabled(true)
	c.Put("q1", opts, 1, "v1")
	v, ok := c.Get("q1", opts, 1)
	if !ok || v.(string) != "v1" {
		t.Fatalf("expected hit v1, got %v %v", v, ok)
	}
	// Different options are a different key.
	if _, ok := c.Get("q1", OptsKey{DisableRewrites: true}, 1); ok {
		t.Fatal("options must partition the key space")
	}
	// Epoch bump invalidates.
	if _, ok := c.Get("q1", opts, 2); ok {
		t.Fatal("stale-epoch entry must miss")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry must be dropped, len=%d", c.Len())
	}
	// Replacement at the new epoch.
	c.Put("q1", opts, 2, "v2")
	if v, ok := c.Get("q1", opts, 2); !ok || v.(string) != "v2" {
		t.Fatalf("expected v2 after re-put, got %v %v", v, ok)
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Invalidations != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(planShards, nil) // one entry per shard
	c.SetEnabled(true)
	// Find two texts in the same shard, insert both: first must be evicted.
	base := "SELECT 0"
	sh := hashText(base) % planShards
	second := ""
	for i := 1; i < 10000; i++ {
		s := fmt.Sprintf("SELECT %d", i)
		if hashText(s)%planShards == sh {
			second = s
			break
		}
	}
	if second == "" {
		t.Fatal("no shard collision found")
	}
	c.Put(base, OptsKey{}, 1, "a")
	c.Put(second, OptsKey{}, 1, "b")
	if _, ok := c.Get(base, OptsKey{}, 1); ok {
		t.Fatal("LRU tail must have been evicted")
	}
	if v, ok := c.Get(second, OptsKey{}, 1); !ok || v.(string) != "b" {
		t.Fatal("newest entry must survive")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestPlanCacheConcurrency(t *testing.T) {
	c := NewPlanCache(256, nil)
	c.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				text := fmt.Sprintf("SELECT %d", i%40)
				epoch := uint64(i % 3)
				if v, ok := c.Get(text, OptsKey{}, epoch); ok && v.(string) != text {
					t.Errorf("wrong value %v for %q", v, text)
					return
				}
				c.Put(text, OptsKey{}, epoch, text)
			}
		}(g)
	}
	wg.Wait()
}

func TestResultCacheVersionInvalidation(t *testing.T) {
	c := NewResultCache(1<<20, nil)
	c.SetEnabled(true)
	opts := OptsKey{}
	c.Put("q", opts, []uint64{10, 20}, "t1", 100, "rows-v1")
	if v, ok := c.Get("q", opts, []uint64{10, 20}); !ok || v.(string) != "rows-v1" {
		t.Fatalf("expected hit, got %v %v", v, ok)
	}
	// A bumped table version must drop the entry (stale).
	if _, ok := c.Get("q", opts, []uint64{10, 21}); ok {
		t.Fatal("stale versions must miss")
	}
	if _, ok := c.Get("q", opts, []uint64{10, 20}); ok {
		t.Fatal("stale entry must have been dropped, not resurrected")
	}
	st := c.Stats()
	if st.StaleEvictions != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestResultCacheByteBudget(t *testing.T) {
	c := NewResultCache(1000, nil)
	c.SetEnabled(true)
	opts := OptsKey{}
	// maxEntry = 125; anything larger bypasses.
	c.Put("big", opts, nil, "t", 500, "x")
	if _, ok := c.Get("big", opts, nil); ok {
		t.Fatal("oversized entry must bypass")
	}
	for i := 0; i < 12; i++ {
		c.Put(fmt.Sprintf("q%d", i), opts, nil, "t", 100, i)
	}
	st := c.Stats()
	if st.Bytes > 1000 {
		t.Fatalf("budget exceeded: %d bytes", st.Bytes)
	}
	if st.Entries != 10 || st.Evictions != 2 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	// Oldest entries were evicted, newest survive.
	if _, ok := c.Get("q0", opts, nil); ok {
		t.Fatal("q0 should have been evicted")
	}
	if _, ok := c.Get("q11", opts, nil); !ok {
		t.Fatal("q11 should survive")
	}
}

func TestResultCacheTenantBudget(t *testing.T) {
	c := NewResultCache(10_000, nil)
	c.SetEnabled(true)
	c.SetTenantBudget("small", 250)
	opts := OptsKey{}
	c.Put("a", opts, nil, "small", 100, "a")
	c.Put("b", opts, nil, "small", 100, "b")
	c.Put("c", opts, nil, "small", 100, "c") // evicts "a" (tenant budget)
	if _, ok := c.Get("a", opts, nil); ok {
		t.Fatal("tenant budget should have evicted a")
	}
	if _, ok := c.Get("c", opts, nil); !ok {
		t.Fatal("c should be cached")
	}
	if got := c.Stats().BytesByTenant["small"]; got != 200 {
		t.Fatalf("tenant bytes = %d, want 200", got)
	}
	// Other tenants are unaffected.
	c.Put("d", opts, nil, "other", 100, "d")
	if _, ok := c.Get("d", opts, nil); !ok {
		t.Fatal("other tenant should cache freely")
	}
	// An entry larger than the tenant budget bypasses without touching
	// other tenants' entries.
	c.Put("huge", opts, nil, "small", 300, "huge")
	if _, ok := c.Get("huge", opts, nil); ok {
		t.Fatal("over-tenant-budget entry must bypass")
	}
	if _, ok := c.Get("d", opts, nil); !ok {
		t.Fatal("other tenant entry must survive")
	}
}

func TestQoSTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewQoS(TenantLimits{}, map[string]TenantLimits{
		"batch": {RatePerSec: 2, Burst: 2},
	}, nil)
	q.SetClock(func() time.Time { return now })

	// Burst of 2 admits twice, then throttles.
	for i := 0; i < 2; i++ {
		rel, err := q.Admit("batch")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		rel()
	}
	if _, err := q.Admit("batch"); err != ErrThrottled {
		t.Fatalf("expected ErrThrottled, got %v", err)
	}
	// Half a second refills one token.
	now = now.Add(500 * time.Millisecond)
	rel, err := q.Admit("batch")
	if err != nil {
		t.Fatalf("after refill: %v", err)
	}
	rel()
	if _, err := q.Admit("batch"); err != ErrThrottled {
		t.Fatalf("bucket should be dry again, got %v", err)
	}
	// Default tenant is unlimited.
	for i := 0; i < 100; i++ {
		rel, err := q.Admit("dash")
		if err != nil {
			t.Fatalf("unlimited tenant throttled: %v", err)
		}
		rel()
	}
	snaps := q.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("expected 2 tenants, got %d", len(snaps))
	}
	if snaps[0].Tenant != "batch" || snaps[0].Shed != 2 || snaps[0].Admitted != 3 {
		t.Fatalf("batch snapshot: %+v", snaps[0])
	}
}

func TestQoSInFlightCap(t *testing.T) {
	q := NewQoS(TenantLimits{MaxInFlight: 2}, nil, nil)
	r1, err := q.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Admit("t"); err != ErrTenantBusy {
		t.Fatalf("expected ErrTenantBusy, got %v", err)
	}
	r1()
	r3, err := q.Admit("t")
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	r2()
	if got := q.Snapshot()[0].InFlight; got != 0 {
		t.Fatalf("in-flight = %d after all releases", got)
	}
}

func TestQoSPriorityAndNil(t *testing.T) {
	q := NewQoS(TenantLimits{Priority: "low"}, map[string]TenantLimits{
		"dash": {Priority: "high"},
	}, nil)
	if q.Priority("dash") != PriorityHigh || q.Priority("anyone") != PriorityLow {
		t.Fatal("priority resolution wrong")
	}
	var nilQ *QoS
	rel, err := nilQ.Admit("x")
	if err != nil {
		t.Fatal("nil QoS must admit")
	}
	rel()
	if nilQ.Priority("x") != PriorityNormal {
		t.Fatal("nil QoS priority must be normal")
	}
	nilQ.Shed("x") // must not panic
}

func TestQoSMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	q := NewQoS(TenantLimits{RatePerSec: 0.0001, Burst: 1}, nil, reg)
	rel, err := q.Admit("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Admit("acme"); err == nil {
		t.Fatal("second admit should throttle")
	}
	rel()
	snap := reg.Snapshot()
	if snap.Counters["tenant.acme.shed"] != 1 {
		t.Fatalf("tenant.acme.shed = %d", snap.Counters["tenant.acme.shed"])
	}
	if snap.Counters["tenant.acme.admitted"] != 1 {
		t.Fatalf("tenant.acme.admitted = %d", snap.Counters["tenant.acme.admitted"])
	}
	if _, ok := snap.Gauges["tenant.acme.in_flight"]; !ok {
		t.Fatal("tenant.acme.in_flight gauge missing")
	}
}

// BenchmarkPlanCacheDisabledPath gates the cost a disabled plan cache adds
// to every statement; CI asserts < 50ns/op like the profiler and sampler
// disabled-path gates.
func BenchmarkPlanCacheDisabledPath(b *testing.B) {
	c := NewPlanCache(64, nil)
	opts := OptsKey{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("SELECT COUNT(*) FROM data WHERE u > 100", opts, 1); ok {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	c := NewPlanCache(64, nil)
	c.SetEnabled(true)
	opts := OptsKey{}
	c.Put("q", opts, 1, "v")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("q", opts, 1); !ok {
			b.Fatal("miss")
		}
	}
}
