// Package serving implements the multi-tenant serving fast path: a
// sharded, epoch-invalidated bound-plan cache, a versioned byte-budget
// result cache, and per-tenant QoS (token-bucket rate limits, in-flight
// caps, and priority classes used for graduated admission shedding).
//
// The caches are deliberately value-agnostic: they store `any` payloads so
// the package depends only on internal/obs. The engine owns the concrete
// cached plan/result types and all validity reasoning (catalog epochs,
// per-table version stamps); this package owns bounding, eviction, and
// metric accounting. Both caches sit on the per-statement hot path, so the
// disabled path is a single atomic load with no locking or hashing.
package serving

import "hash/fnv"

// hashText is the bucket hash for cache keys: FNV-1a over the raw
// statement text. Raw text (not the literal-stripped fingerprint) is
// required because sql.Fingerprint collapses literals to '?', and two
// statements differing only in literals must never share a plan or result.
func hashText(text string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(text))
	return h.Sum64()
}

// OptsKey packs the session-relevant execution options that change what a
// cached entry means. Rewrite toggles select different plans; parallelism
// and kernel toggles can change unordered result layouts, so the result
// cache includes them too.
type OptsKey struct {
	DisableRewrites bool
	DisableKernels  bool
	Parallelism     int
}
