package serving

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"patchindex/internal/obs"
)

// DefaultTenant is the tenant sessions belong to until they identify
// themselves (hello `tenant` field or `\set tenant`).
const DefaultTenant = "default"

// ErrThrottled is returned by Admit when a tenant exceeds its token-bucket
// rate limit.
var ErrThrottled = errors.New("tenant rate limit exceeded")

// ErrTenantBusy is returned by Admit when a tenant is at its in-flight cap.
var ErrTenantBusy = errors.New("tenant in-flight limit reached")

// Priority orders tenants for graduated admission shedding: lower
// priorities are shed from the global queue earlier (at a smaller fraction
// of the configured queue depth), so high-priority dashboards keep their
// slots while batch tenants back off first.
type Priority int

const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
)

// ParsePriority maps "low"/"normal"/"high" (default normal).
func ParsePriority(s string) Priority {
	switch s {
	case "low":
		return PriorityLow
	case "high":
		return PriorityHigh
	default:
		return PriorityNormal
	}
}

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	default:
		return "normal"
	}
}

// TenantLimits configures one tenant (or the default for unlisted
// tenants). Zero values mean unlimited / inherit.
type TenantLimits struct {
	// RatePerSec is the token-bucket refill rate (queries/second; 0 = no
	// rate limit).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (0 = max(RatePerSec, 1)).
	Burst float64 `json:"burst,omitempty"`
	// MaxInFlight caps this tenant's concurrently executing queries
	// (0 = unlimited; the global admission semaphore still applies).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Priority is "low", "normal" (default), or "high".
	Priority string `json:"priority,omitempty"`
	// ResultCacheBytes caps this tenant's share of the result cache
	// (0 = bounded only by the global budget).
	ResultCacheBytes int64 `json:"result_cache_bytes,omitempty"`
}

// QoS tracks per-tenant admission state: token buckets, in-flight counts,
// and priorities. Tenant state is created on first use; metrics are
// registered per tenant as `tenant.<id>.shed` / `tenant.<id>.in_flight` /
// `tenant.<id>.admitted` and ride the registry's auto-mirroring into
// /metrics, /stats, and the time-series sampler. A nil *QoS admits
// everything at normal priority, so the server needs no "is QoS on" checks.
type QoS struct {
	defaults  TenantLimits
	overrides map[string]TenantLimits
	reg       *obs.Registry
	now       func() time.Time // injectable for tests

	mu      sync.Mutex
	tenants map[string]*tenantState
}

type tenantState struct {
	limits TenantLimits
	pri    Priority

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inFlight int

	mShed     *obs.Counter
	mAdmitted *obs.Counter
	gInFlight *obs.Gauge
}

// NewQoS creates a QoS policy. defaults applies to tenants not listed in
// overrides; reg may be nil (private registry).
func NewQoS(defaults TenantLimits, overrides map[string]TenantLimits, reg *obs.Registry) *QoS {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	q := &QoS{
		defaults:  defaults,
		overrides: make(map[string]TenantLimits, len(overrides)),
		reg:       reg,
		now:       time.Now,
		tenants:   make(map[string]*tenantState),
	}
	for t, l := range overrides {
		q.overrides[t] = l
	}
	return q
}

// SetClock replaces the time source (tests only).
func (q *QoS) SetClock(now func() time.Time) { q.now = now }

// Limits returns the effective limits for a tenant.
func (q *QoS) Limits(tenant string) TenantLimits {
	if q == nil {
		return TenantLimits{}
	}
	if l, ok := q.overrides[tenant]; ok {
		return l
	}
	return q.defaults
}

// Tenants returns the explicitly configured tenant names, sorted.
func (q *QoS) Tenants() []string {
	if q == nil {
		return nil
	}
	out := make([]string, 0, len(q.overrides))
	for t := range q.overrides {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Priority returns the tenant's shed priority (normal for nil QoS).
func (q *QoS) Priority(tenant string) Priority {
	if q == nil {
		return PriorityNormal
	}
	return ParsePriority(q.Limits(tenant).Priority)
}

func (q *QoS) state(tenant string) *tenantState {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts, ok := q.tenants[tenant]
	if !ok {
		l := q.Limits(tenant)
		burst := l.Burst
		if burst <= 0 {
			burst = l.RatePerSec
			if burst < 1 {
				burst = 1
			}
		}
		ts = &tenantState{
			limits:    l,
			pri:       ParsePriority(l.Priority),
			tokens:    burst,
			last:      q.now(),
			mShed:     q.reg.Counter(fmt.Sprintf("tenant.%s.shed", tenant)),
			mAdmitted: q.reg.Counter(fmt.Sprintf("tenant.%s.admitted", tenant)),
			gInFlight: q.reg.Gauge(fmt.Sprintf("tenant.%s.in_flight", tenant)),
		}
		q.tenants[tenant] = ts
	}
	return ts
}

// Admit charges one query against the tenant's rate limit and in-flight
// cap. On success it returns a release func the caller must invoke when
// the query finishes. On failure it returns ErrThrottled or ErrTenantBusy
// and counts a shed. Admit on a nil QoS always succeeds.
func (q *QoS) Admit(tenant string) (func(), error) {
	if q == nil {
		return func() {}, nil
	}
	ts := q.state(tenant)
	ts.mu.Lock()
	if ts.limits.RatePerSec > 0 {
		now := q.now()
		elapsed := now.Sub(ts.last).Seconds()
		if elapsed > 0 {
			burst := ts.limits.Burst
			if burst <= 0 {
				burst = ts.limits.RatePerSec
				if burst < 1 {
					burst = 1
				}
			}
			ts.tokens += elapsed * ts.limits.RatePerSec
			if ts.tokens > burst {
				ts.tokens = burst
			}
			ts.last = now
		}
		if ts.tokens < 1 {
			ts.mu.Unlock()
			ts.mShed.Inc()
			return nil, ErrThrottled
		}
		ts.tokens--
	}
	if ts.limits.MaxInFlight > 0 && ts.inFlight >= ts.limits.MaxInFlight {
		ts.mu.Unlock()
		ts.mShed.Inc()
		return nil, ErrTenantBusy
	}
	ts.inFlight++
	ts.mu.Unlock()
	ts.mAdmitted.Inc()
	ts.gInFlight.Add(1)
	release := func() {
		ts.mu.Lock()
		ts.inFlight--
		ts.mu.Unlock()
		ts.gInFlight.Add(-1)
	}
	return release, nil
}

// Shed records a queue-level shed (global admission queue overflow)
// against the tenant, so `tenant.<id>.shed` covers both QoS and queue
// rejections.
func (q *QoS) Shed(tenant string) {
	if q == nil {
		return
	}
	q.state(tenant).mShed.Inc()
}

// TenantSnapshot is one tenant's /stats QoS row.
type TenantSnapshot struct {
	Tenant   string       `json:"tenant"`
	Limits   TenantLimits `json:"limits"`
	Priority string       `json:"priority"`
	InFlight int          `json:"in_flight"`
	Admitted int64        `json:"admitted"`
	Shed     int64        `json:"shed"`
}

// Snapshot returns per-tenant QoS state for every tenant seen so far,
// sorted by name.
func (q *QoS) Snapshot() []TenantSnapshot {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	states := make(map[string]*tenantState, len(q.tenants))
	for t, ts := range q.tenants {
		states[t] = ts
	}
	q.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(states))
	for t, ts := range states {
		ts.mu.Lock()
		inFlight := ts.inFlight
		ts.mu.Unlock()
		out = append(out, TenantSnapshot{
			Tenant:   t,
			Limits:   ts.limits,
			Priority: ts.pri.String(),
			InFlight: inFlight,
			Admitted: ts.mAdmitted.Value(),
			Shed:     ts.mShed.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
