package vector

import "sync"

// Pooling for the per-batch scratch objects of the vectorized hot path.
// Expression kernels and the Filter/Project operators acquire output vectors
// and selection vectors here instead of allocating per batch; in steady
// state every Get is satisfied from the pool and the scan→filter→project
// pipeline runs allocation-free.

// vecPools holds one pool per column type so a pooled vector's typed slice
// is always reusable as-is.
var vecPools = [5]sync.Pool{
	{New: func() any { return &Vector{Typ: Int64} }},
	{New: func() any { return &Vector{Typ: Float64} }},
	{New: func() any { return &Vector{Typ: String} }},
	{New: func() any { return &Vector{Typ: Bool} }},
	{New: func() any { return &Vector{Typ: Date} }},
}

// GetVec returns a pooled vector of type t resized to length n (contents
// undefined, no NULLs). Release it with PutVec when the batch that exposed
// it is no longer referenced.
func GetVec(t Type, n int) *Vector {
	v := vecPools[t].Get().(*Vector)
	v.Typ = t
	v.Resize(n)
	return v
}

// PutVec returns a vector obtained from GetVec to its pool. Callers must
// not retain references to it afterwards.
func PutVec(v *Vector) {
	if v == nil {
		return
	}
	vecPools[v.Typ].Put(v)
}

// SelVec is a reusable selection vector: the ascending physical row
// positions that survive a predicate. It exists to make the keep-list of
// Filter (and the patch keep-list of PatchSelect) a pooled, reused buffer
// rather than a per-batch allocation.
type SelVec struct {
	Idx []int
}

var selPool = sync.Pool{New: func() any { return &SelVec{Idx: make([]int, 0, BatchSize)} }}

// GetSel returns a pooled, empty selection vector.
func GetSel() *SelVec {
	s := selPool.Get().(*SelVec)
	s.Idx = s.Idx[:0]
	return s
}

// PutSel returns a selection vector to the pool.
func PutSel(s *SelVec) {
	if s != nil {
		selPool.Put(s)
	}
}
