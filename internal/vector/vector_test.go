package vector

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Int64:   "BIGINT",
		Float64: "DOUBLE",
		String:  "VARCHAR",
		Bool:    "BOOLEAN",
		Date:    "DATE",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", typ, got, want)
		}
	}
	if got := Type(250).String(); got != "Type(250)" {
		t.Errorf("unknown type string: %q", got)
	}
}

func TestTypeFromName(t *testing.T) {
	for name, want := range map[string]Type{
		"BIGINT": Int64, "INT": Int64, "INTEGER": Int64, "LONG": Int64,
		"DOUBLE": Float64, "FLOAT": Float64, "REAL": Float64,
		"VARCHAR": String, "TEXT": String, "STRING": String,
		"BOOLEAN": Bool, "BOOL": Bool,
		"DATE": Date,
	} {
		got, err := TypeFromName(name)
		if err != nil || got != want {
			t.Errorf("TypeFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := TypeFromName("BLOB"); err == nil {
		t.Error("TypeFromName(BLOB) should fail")
	}
}

func TestAppendAndLen(t *testing.T) {
	v := New(Int64, 4)
	if v.Len() != 0 {
		t.Fatalf("new vector has length %d", v.Len())
	}
	v.AppendInt64(1)
	v.AppendInt64(2)
	v.AppendNull()
	if v.Len() != 3 {
		t.Fatalf("length = %d, want 3", v.Len())
	}
	if v.IsNull(0) || v.IsNull(1) || !v.IsNull(2) {
		t.Errorf("null mask wrong: %v", v.Nulls)
	}
	// After the first null, further appends must extend the mask.
	v.AppendInt64(9)
	if v.IsNull(3) {
		t.Error("value appended after null marked null")
	}
	if v.I64[3] != 9 {
		t.Errorf("value = %d, want 9", v.I64[3])
	}
}

func TestAppendAllTypes(t *testing.T) {
	iv := New(Int64, 0)
	iv.AppendInt64(7)
	fv := New(Float64, 0)
	fv.AppendFloat64(1.5)
	sv := New(String, 0)
	sv.AppendString("x")
	bv := New(Bool, 0)
	bv.AppendBool(true)
	dv := New(Date, 0)
	dv.AppendInt64(100)
	for _, v := range []*Vector{iv, fv, sv, bv, dv} {
		if v.Len() != 1 || v.IsNull(0) {
			t.Errorf("vector %v wrong after append", v.Typ)
		}
	}
	if iv.Value(0).I64 != 7 || fv.Value(0).F64 != 1.5 || sv.Value(0).Str != "x" || !bv.Value(0).B || dv.Value(0).I64 != 100 {
		t.Error("values round-trip incorrectly")
	}
}

func TestAppendValueTypeMismatch(t *testing.T) {
	v := New(Int64, 0)
	if err := v.AppendValue(StringValue("no")); err == nil {
		t.Error("appending string to int vector should fail")
	}
	// Date/Int64 interop is allowed.
	if err := v.AppendValue(DateValue(3)); err != nil {
		t.Errorf("date into int64: %v", err)
	}
	d := New(Date, 0)
	if err := d.AppendValue(IntValue(5)); err != nil {
		t.Errorf("int64 into date: %v", err)
	}
	if err := v.AppendValue(NullValue(String)); err != nil {
		t.Errorf("null of any type should append: %v", err)
	}
}

func TestSliceSharesData(t *testing.T) {
	v := New(Int64, 0)
	for i := 0; i < 10; i++ {
		if i == 5 {
			v.AppendNull()
			continue
		}
		v.AppendInt64(int64(i))
	}
	s := v.Slice(3, 8)
	if s.Len() != 5 {
		t.Fatalf("slice length %d, want 5", s.Len())
	}
	if s.I64[0] != 3 {
		t.Errorf("slice start wrong: %d", s.I64[0])
	}
	if !s.IsNull(2) {
		t.Error("null at original position 5 lost in slice")
	}
}

func TestGatherAndReset(t *testing.T) {
	src := New(String, 0)
	for _, s := range []string{"a", "b", "c", "d"} {
		src.AppendString(s)
	}
	dst := New(String, 0)
	dst.Gather(src, []int{3, 1})
	if dst.Len() != 2 || dst.Str[0] != "d" || dst.Str[1] != "b" {
		t.Errorf("gather result %v", dst.Str)
	}
	dst.Reset()
	if dst.Len() != 0 {
		t.Errorf("reset failed: len %d", dst.Len())
	}
}

// TestAppendRangeEquivalence: AppendRange must match element-wise Append for
// random vectors with random null patterns (property-based).
func TestAppendRangeEquivalence(t *testing.T) {
	f := func(vals []int64, nullMask []bool, loRaw, hiRaw uint8) bool {
		src := New(Int64, len(vals))
		for i, x := range vals {
			if i < len(nullMask) && nullMask[i] {
				src.AppendNull()
			} else {
				src.AppendInt64(x)
			}
		}
		if src.Len() == 0 {
			return true
		}
		lo := int(loRaw) % src.Len()
		hi := lo + int(hiRaw)%(src.Len()-lo+1)

		a := New(Int64, 0)
		a.AppendInt64(-1) // pre-existing content
		a.AppendRange(src, lo, hi)

		b := New(Int64, 0)
		b.AppendInt64(-1)
		for i := lo; i < hi; i++ {
			b.Append(src, i)
		}
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if a.IsNull(i) != b.IsNull(i) {
				return false
			}
			if !a.IsNull(i) && a.I64[i] != b.I64[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAppendRangeStrings(t *testing.T) {
	src := New(String, 0)
	src.AppendString("a")
	src.AppendNull()
	src.AppendString("c")
	dst := New(String, 0)
	dst.AppendRange(src, 0, 3)
	if dst.Len() != 3 || dst.Str[0] != "a" || !dst.IsNull(1) || dst.Str[2] != "c" {
		t.Errorf("string AppendRange wrong: %v nulls=%v", dst.Str, dst.Nulls)
	}
}

func TestCompareNullsFirst(t *testing.T) {
	v := New(Int64, 0)
	v.AppendNull()
	v.AppendInt64(1)
	v.AppendInt64(1)
	v.AppendInt64(2)
	if v.Compare(0, v, 1) >= 0 {
		t.Error("NULL should sort before non-NULL")
	}
	if v.Compare(1, v, 0) <= 0 {
		t.Error("non-NULL should sort after NULL")
	}
	if v.Compare(1, v, 2) != 0 {
		t.Error("equal values should compare 0")
	}
	if v.Compare(1, v, 3) >= 0 || v.Compare(3, v, 1) <= 0 {
		t.Error("ordering wrong")
	}
}

func TestCompareAllTypes(t *testing.T) {
	f := New(Float64, 0)
	f.AppendFloat64(1.5)
	f.AppendFloat64(2.5)
	if f.Compare(0, f, 1) >= 0 {
		t.Error("float compare wrong")
	}
	s := New(String, 0)
	s.AppendString("abc")
	s.AppendString("abd")
	if s.Compare(0, s, 1) >= 0 {
		t.Error("string compare wrong")
	}
	b := New(Bool, 0)
	b.AppendBool(false)
	b.AppendBool(true)
	if b.Compare(0, b, 1) >= 0 {
		t.Error("bool compare wrong: false < true")
	}
}

func TestValueCompareAndEqual(t *testing.T) {
	if IntValue(1).Compare(IntValue(2)) >= 0 {
		t.Error("1 < 2 expected")
	}
	if NullValue(Int64).Compare(IntValue(1)) >= 0 {
		t.Error("NULL sorts first")
	}
	if NullValue(Int64).Compare(NullValue(Int64)) != 0 {
		t.Error("NULL == NULL for sorting")
	}
	if NullValue(Int64).Equal(NullValue(Int64)) {
		t.Error("NULL never Equal (SQL semantics)")
	}
	if !StringValue("x").Equal(StringValue("x")) {
		t.Error("equal strings")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntValue(42), "42"},
		{FloatValue(1.5), "1.5"},
		{StringValue("hi"), "hi"},
		{BoolValue(true), "true"},
		{BoolValue(false), "false"},
		{NullValue(Int64), "NULL"},
		{DateValue(0), "1970-01-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDateFromTime(t *testing.T) {
	tm := time.Date(2020, 3, 1, 15, 30, 0, 0, time.UTC)
	v := DateFromTime(tm)
	if v.Typ != Date {
		t.Fatalf("type %v", v.Typ)
	}
	if got := v.String(); got != "2020-03-01" {
		t.Errorf("date = %q", got)
	}
}

func TestBatchBasics(t *testing.T) {
	b := NewBatch([]Type{Int64, String})
	if b.Len() != 0 {
		t.Fatalf("empty batch length %d", b.Len())
	}
	b.Vecs[0].AppendInt64(1)
	b.Vecs[1].AppendString("one")
	if b.Len() != 1 {
		t.Fatalf("batch length %d", b.Len())
	}
	row := b.Row(0)
	if row[0].I64 != 1 || row[1].Str != "one" {
		t.Errorf("row = %v", row)
	}
	types := b.Types()
	if len(types) != 2 || types[0] != Int64 || types[1] != String {
		t.Errorf("types = %v", types)
	}
	b.BaseRow, b.Contiguous = 7, true
	b.Reset()
	if b.Len() != 0 || b.BaseRow != 0 || b.Contiguous {
		t.Error("reset did not clear batch state")
	}
}

func TestSetLen(t *testing.T) {
	v := New(Int64, 8)
	v.I64 = append(v.I64, 1, 2, 3, 4)
	v.SetLen(4)
	if v.Len() != 4 {
		t.Fatalf("len %d", v.Len())
	}
	v.SetLen(2)
	if v.Len() != 2 || len(v.I64) != 2 {
		t.Errorf("truncate failed: %d %d", v.Len(), len(v.I64))
	}
}

func TestHasNulls(t *testing.T) {
	v := New(Int64, 0)
	v.AppendInt64(1)
	if v.HasNulls() {
		t.Error("no nulls expected")
	}
	v.AppendNull()
	if !v.HasNulls() {
		t.Error("null expected")
	}
}

// TestGatherRandom cross-checks Gather against manual copying.
func TestGatherRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := New(Float64, 0)
	for i := 0; i < 100; i++ {
		if rng.Intn(10) == 0 {
			src.AppendNull()
		} else {
			src.AppendFloat64(rng.Float64())
		}
	}
	idx := rng.Perm(100)[:37]
	dst := New(Float64, 0)
	dst.Gather(src, idx)
	for k, i := range idx {
		if dst.IsNull(k) != src.IsNull(i) {
			t.Fatalf("null mismatch at %d", k)
		}
		if !dst.IsNull(k) && dst.F64[k] != src.F64[i] {
			t.Fatalf("value mismatch at %d", k)
		}
	}
}
