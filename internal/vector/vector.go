// Package vector provides the typed column vectors and row batches that all
// operators of the engine exchange. A Vector is a fixed-type columnar array
// with an optional null mask; a Batch is a set of equally sized vectors plus
// row-identity metadata that the PatchSelect operator relies on.
package vector

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// BatchSize is the maximum number of rows operators exchange per batch. The
// engine is vectorized: every operator consumes and produces batches of up to
// BatchSize rows, amortizing interpretation overhead as in Actian Vector.
const BatchSize = 1024

// Type enumerates the column types supported by the engine.
type Type uint8

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota
	// Float64 is a 64-bit IEEE-754 column.
	Float64
	// String is a variable-length UTF-8 string column.
	String
	// Bool is a boolean column.
	Bool
	// Date is a day-granularity date column stored as days since epoch.
	Date
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// TypeFromName parses a SQL type name into a Type. It accepts the common
// aliases used by the SQL front-end.
func TypeFromName(name string) (Type, error) {
	switch name {
	case "BIGINT", "INT", "INTEGER", "INT8", "LONG":
		return Int64, nil
	case "DOUBLE", "FLOAT", "FLOAT8", "REAL", "DECIMAL":
		return Float64, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR":
		return String, nil
	case "BOOLEAN", "BOOL":
		return Bool, nil
	case "DATE":
		return Date, nil
	default:
		return 0, fmt.Errorf("vector: unknown type name %q", name)
	}
}

// Vector is a typed columnar array of up to BatchSize values (inside batches)
// or arbitrarily many values (inside storage blocks). Exactly one of the
// typed slices is active, selected by Typ. Nulls, when non-nil, marks value i
// as NULL; a nil Nulls slice means the vector contains no NULLs.
type Vector struct {
	Typ   Type
	I64   []int64
	F64   []float64
	Str   []string
	B     []bool
	Nulls []bool
	n     int
}

// New returns an empty vector of type t with capacity for capHint values.
func New(t Type, capHint int) *Vector {
	v := &Vector{Typ: t}
	switch t {
	case Int64, Date:
		v.I64 = make([]int64, 0, capHint)
	case Float64:
		v.F64 = make([]float64, 0, capHint)
	case String:
		v.Str = make([]string, 0, capHint)
	case Bool:
		v.B = make([]bool, 0, capHint)
	}
	return v
}

// NewLen returns a vector of type t with length n (zero values, no NULLs).
// Kernels and the residual interpreted evaluators fill it by index
// assignment instead of growing it through Append*, which keeps the hot
// loops free of bounds-growth branches and allocations.
func NewLen(t Type, n int) *Vector {
	v := &Vector{Typ: t, n: n}
	switch t {
	case Int64, Date:
		v.I64 = make([]int64, n)
	case Float64:
		v.F64 = make([]float64, n)
	case String:
		v.Str = make([]string, n)
	case Bool:
		v.B = make([]bool, n)
	}
	return v
}

// Resize adjusts the vector to length n (values undefined where grown) and
// clears the null mask. It reuses the existing capacity when possible, so a
// pooled output vector costs no allocation in steady state.
func (v *Vector) Resize(n int) {
	grow := func(c int) bool { return c < n }
	switch v.Typ {
	case Int64, Date:
		if grow(cap(v.I64)) {
			v.I64 = make([]int64, n)
		} else {
			v.I64 = v.I64[:n]
		}
	case Float64:
		if grow(cap(v.F64)) {
			v.F64 = make([]float64, n)
		} else {
			v.F64 = v.F64[:n]
		}
	case String:
		if grow(cap(v.Str)) {
			v.Str = make([]string, n)
		} else {
			v.Str = v.Str[:n]
		}
	case Bool:
		if grow(cap(v.B)) {
			v.B = make([]bool, n)
		} else {
			v.B = v.B[:n]
		}
	}
	v.Nulls = nil
	v.n = n
}

// SetNullAt marks value i as NULL, materializing the null mask on first use.
// The typed slot keeps whatever value it holds; readers must consult the
// mask first, as everywhere else in the engine.
func (v *Vector) SetNullAt(i int) {
	if v.Nulls == nil || len(v.Nulls) < v.n {
		nulls := make([]bool, v.n)
		copy(nulls, v.Nulls)
		v.Nulls = nulls
	}
	v.Nulls[i] = true
}

// NewFromInt64 wraps the given slice (not copied) into an Int64 vector.
func NewFromInt64(vals []int64) *Vector {
	return &Vector{Typ: Int64, I64: vals, n: len(vals)}
}

// NewFromFloat64 wraps the given slice (not copied) into a Float64 vector.
func NewFromFloat64(vals []float64) *Vector {
	return &Vector{Typ: Float64, F64: vals, n: len(vals)}
}

// NewFromString wraps the given slice (not copied) into a String vector.
func NewFromString(vals []string) *Vector {
	return &Vector{Typ: String, Str: vals, n: len(vals)}
}

// NewFromBool wraps the given slice (not copied) into a Bool vector.
func NewFromBool(vals []bool) *Vector {
	return &Vector{Typ: Bool, B: vals, n: len(vals)}
}

// Len returns the number of values in the vector.
func (v *Vector) Len() int { return v.n }

// SetLen adjusts the logical length after the caller filled the typed slice
// directly. The typed slice must already have at least n elements.
func (v *Vector) SetLen(n int) {
	v.n = n
	switch v.Typ {
	case Int64, Date:
		v.I64 = v.I64[:n]
	case Float64:
		v.F64 = v.F64[:n]
	case String:
		v.Str = v.Str[:n]
	case Bool:
		v.B = v.B[:n]
	}
	if v.Nulls != nil {
		v.Nulls = v.Nulls[:n]
	}
}

// IsNull reports whether value i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// HasNulls reports whether any value in the vector is NULL.
func (v *Vector) HasNulls() bool {
	if v.Nulls == nil {
		return false
	}
	for _, b := range v.Nulls {
		if b {
			return true
		}
	}
	return false
}

// ensureNulls materializes the null mask so individual entries can be set.
func (v *Vector) ensureNulls() {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.n, max(cap(v.I64), max(cap(v.F64), max(cap(v.Str), max(cap(v.B), v.n)))))
	}
	for len(v.Nulls) < v.n {
		v.Nulls = append(v.Nulls, false)
	}
}

// AppendNull appends a NULL value (zero in the typed slice, null mask set).
func (v *Vector) AppendNull() {
	switch v.Typ {
	case Int64, Date:
		v.I64 = append(v.I64, 0)
	case Float64:
		v.F64 = append(v.F64, 0)
	case String:
		v.Str = append(v.Str, "")
	case Bool:
		v.B = append(v.B, false)
	}
	v.n++
	v.ensureNulls()
	v.Nulls[v.n-1] = true
}

// AppendInt64 appends a non-NULL int64/date value.
func (v *Vector) AppendInt64(x int64) {
	v.I64 = append(v.I64, x)
	v.n++
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
}

// AppendFloat64 appends a non-NULL float64 value.
func (v *Vector) AppendFloat64(x float64) {
	v.F64 = append(v.F64, x)
	v.n++
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
}

// AppendString appends a non-NULL string value.
func (v *Vector) AppendString(x string) {
	v.Str = append(v.Str, x)
	v.n++
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
}

// AppendBool appends a non-NULL bool value.
func (v *Vector) AppendBool(x bool) {
	v.B = append(v.B, x)
	v.n++
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
}

// Append copies value i of src (which must have the same type) onto v.
func (v *Vector) Append(src *Vector, i int) {
	if src.IsNull(i) {
		v.AppendNull()
		return
	}
	switch v.Typ {
	case Int64, Date:
		v.AppendInt64(src.I64[i])
	case Float64:
		v.AppendFloat64(src.F64[i])
	case String:
		v.AppendString(src.Str[i])
	case Bool:
		v.AppendBool(src.B[i])
	}
}

// AppendValue appends a Value, which must match the vector type or be NULL.
func (v *Vector) AppendValue(val Value) error {
	if val.Null {
		v.AppendNull()
		return nil
	}
	if val.Typ != v.Typ && !(v.Typ == Date && val.Typ == Int64) && !(v.Typ == Int64 && val.Typ == Date) {
		return fmt.Errorf("vector: cannot append %s value to %s vector", val.Typ, v.Typ)
	}
	switch v.Typ {
	case Int64, Date:
		v.AppendInt64(val.I64)
	case Float64:
		v.AppendFloat64(val.F64)
	case String:
		v.AppendString(val.Str)
	case Bool:
		v.AppendBool(val.B)
	}
	return nil
}

// Reset truncates the vector to zero length, keeping capacity.
func (v *Vector) Reset() {
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
	v.B = v.B[:0]
	if v.Nulls != nil {
		v.Nulls = v.Nulls[:0]
	}
	v.n = 0
}

// Value extracts value i as a boxed Value.
func (v *Vector) Value(i int) Value {
	if v.IsNull(i) {
		return Value{Typ: v.Typ, Null: true}
	}
	switch v.Typ {
	case Int64, Date:
		return Value{Typ: v.Typ, I64: v.I64[i]}
	case Float64:
		return Value{Typ: v.Typ, F64: v.F64[i]}
	case String:
		return Value{Typ: v.Typ, Str: v.Str[i]}
	case Bool:
		return Value{Typ: v.Typ, B: v.B[i]}
	default:
		panic("vector: unknown type")
	}
}

// Slice returns a view of rows [lo,hi) sharing the underlying arrays.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Typ: v.Typ, n: hi - lo}
	switch v.Typ {
	case Int64, Date:
		out.I64 = v.I64[lo:hi]
	case Float64:
		out.F64 = v.F64[lo:hi]
	case String:
		out.Str = v.Str[lo:hi]
	case Bool:
		out.B = v.B[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	return out
}

// SliceInto writes a view of rows [lo,hi) into out, sharing the underlying
// arrays. It is Slice without the allocation: scans reuse one Vector header
// per column across batches.
func (v *Vector) SliceInto(out *Vector, lo, hi int) {
	out.Typ = v.Typ
	out.n = hi - lo
	out.I64, out.F64, out.Str, out.B, out.Nulls = nil, nil, nil, nil, nil
	switch v.Typ {
	case Int64, Date:
		out.I64 = v.I64[lo:hi]
	case Float64:
		out.F64 = v.F64[lo:hi]
	case String:
		out.Str = v.Str[lo:hi]
	case Bool:
		out.B = v.B[lo:hi]
	}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
}

// Gather appends the rows of src selected by idx onto v.
func (v *Vector) Gather(src *Vector, idx []int) {
	for _, i := range idx {
		v.Append(src, i)
	}
}

// AppendRange bulk-appends rows [lo,hi) of src (same type) onto v.
func (v *Vector) AppendRange(src *Vector, lo, hi int) {
	if hi <= lo {
		return
	}
	n := hi - lo
	switch v.Typ {
	case Int64, Date:
		v.I64 = append(v.I64, src.I64[lo:hi]...)
	case Float64:
		v.F64 = append(v.F64, src.F64[lo:hi]...)
	case String:
		v.Str = append(v.Str, src.Str[lo:hi]...)
	case Bool:
		v.B = append(v.B, src.B[lo:hi]...)
	}
	v.n += n
	switch {
	case src.Nulls == nil && v.Nulls == nil:
		// no masks involved
	case src.Nulls == nil:
		for i := 0; i < n; i++ {
			v.Nulls = append(v.Nulls, false)
		}
	default:
		v.ensureNullsUpTo(v.n - n)
		v.Nulls = append(v.Nulls, src.Nulls[lo:hi]...)
	}
}

// ensureNullsUpTo backfills the null mask with false up to length n.
func (v *Vector) ensureNullsUpTo(n int) {
	if v.Nulls == nil {
		v.Nulls = make([]bool, 0, v.n)
	}
	for len(v.Nulls) < n {
		v.Nulls = append(v.Nulls, false)
	}
}

// Compare compares value i of v against value j of other under SQL semantics
// where NULL sorts before every non-NULL value (needed for stable merge
// behaviour; query-level predicates treat NULL separately). It returns a
// negative, zero or positive number.
func (v *Vector) Compare(i int, other *Vector, j int) int {
	ni, nj := v.IsNull(i), other.IsNull(j)
	switch {
	case ni && nj:
		return 0
	case ni:
		return -1
	case nj:
		return 1
	}
	switch v.Typ {
	case Int64, Date:
		return cmpOrdered(v.I64[i], other.I64[j])
	case Float64:
		return cmpOrdered(v.F64[i], other.F64[j])
	case String:
		return cmpOrdered(v.Str[i], other.Str[j])
	case Bool:
		bi, bj := 0, 0
		if v.B[i] {
			bi = 1
		}
		if other.B[j] {
			bj = 1
		}
		return bi - bj
	default:
		panic("vector: unknown type")
	}
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Value is a boxed scalar used at plan build time (literals) and in row
// oriented interfaces (test helpers, result iteration).
type Value struct {
	Typ  Type
	Null bool
	I64  int64
	F64  float64
	Str  string
	B    bool
}

// NullValue returns a NULL of the given type.
func NullValue(t Type) Value { return Value{Typ: t, Null: true} }

// IntValue boxes an int64.
func IntValue(x int64) Value { return Value{Typ: Int64, I64: x} }

// FloatValue boxes a float64.
func FloatValue(x float64) Value { return Value{Typ: Float64, F64: x} }

// StringValue boxes a string.
func StringValue(x string) Value { return Value{Typ: String, Str: x} }

// BoolValue boxes a bool.
func BoolValue(x bool) Value { return Value{Typ: Bool, B: x} }

// DateValue boxes a day-since-epoch date.
func DateValue(days int64) Value { return Value{Typ: Date, I64: days} }

// DateFromTime converts a time.Time to a Date value (UTC days since epoch).
func DateFromTime(t time.Time) Value {
	return DateValue(t.UTC().Unix() / 86400)
}

// Compare compares two values with NULL sorting first.
func (a Value) Compare(b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	switch a.Typ {
	case Int64, Date:
		return cmpOrdered(a.I64, b.I64)
	case Float64:
		return cmpOrdered(a.F64, b.F64)
	case String:
		return cmpOrdered(a.Str, b.Str)
	case Bool:
		ai, bi := 0, 0
		if a.B {
			ai = 1
		}
		if b.B {
			bi = 1
		}
		return ai - bi
	default:
		panic("vector: unknown type")
	}
}

// CmpIntFloat compares an int64 against a float64 exactly, without rounding
// the integer through float64 (which silently corrupts comparisons for
// |i| > 2^53). NaN compares equal to everything, preserving the behaviour of
// the old float-promoting comparison (neither < nor > held, so it reported
// 0); ±Inf are handled by the range guards.
func CmpIntFloat(i int64, f float64) int {
	if math.IsNaN(f) {
		return 0
	}
	// 2^63 and above (or below -2^63): f is outside int64 range entirely.
	if f >= 9223372036854775808.0 {
		return -1
	}
	if f < -9223372036854775808.0 {
		return 1
	}
	// f ∈ [-2^63, 2^63): truncation is exact and in range. For |f| ≥ 2^53
	// the float is integral, so tr == f and frac is 0; below that both the
	// truncation and the subtraction are exact.
	tr := int64(f)
	switch {
	case i < tr:
		return -1
	case i > tr:
		return 1
	}
	frac := f - float64(tr)
	switch {
	case frac > 0:
		return -1
	case frac < 0:
		return 1
	default:
		return 0
	}
}

// CompareNumeric compares two values like Compare but handles mixed
// Int64/Date vs Float64 pairs exactly. Planning uses it wherever a literal's
// type may differ from the column's (SMA bounds, zone maps).
func CompareNumeric(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	aInt := a.Typ == Int64 || a.Typ == Date
	bInt := b.Typ == Int64 || b.Typ == Date
	switch {
	case aInt && b.Typ == Float64:
		return CmpIntFloat(a.I64, b.F64)
	case a.Typ == Float64 && bInt:
		return -CmpIntFloat(b.I64, a.F64)
	default:
		return a.Compare(b)
	}
}

// Equal reports value equality with NULL == NULL being false (SQL semantics).
func (a Value) Equal(b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return a.Compare(b) == 0
}

// String renders the value for result display.
func (a Value) String() string {
	if a.Null {
		return "NULL"
	}
	switch a.Typ {
	case Int64:
		return strconv.FormatInt(a.I64, 10)
	case Date:
		return time.Unix(a.I64*86400, 0).UTC().Format("2006-01-02")
	case Float64:
		return strconv.FormatFloat(a.F64, 'g', -1, 64)
	case String:
		return a.Str
	case Bool:
		if a.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Batch is the unit of exchange between operators: a list of equally sized
// vectors. BaseRow and Contiguous implement the paper's requirement that
// PatchSelect can assume "rowIDs of incoming tuples are equal to tuple
// identifiers": scans emit contiguous batches and record the first row id, so
// patch application never materializes an id column. Any operator that
// filters or reorders rows must clear Contiguous.
type Batch struct {
	Vecs []*Vector
	// BaseRow is the table-local row id of row 0, valid if Contiguous.
	BaseRow uint64
	// Contiguous marks that row i has row id BaseRow+i.
	Contiguous bool
	// Sel, when non-nil, is a selection vector: only the physical row
	// positions it lists (ascending) are logically part of the batch. It is
	// an opt-in protocol between adjacent operators — a producer may attach
	// it only when its consumer declared support (Filter → Project), and
	// consumers that understand it must emit dense batches themselves.
	// Everything else in the engine ignores Sel and sees physical rows.
	Sel []int
}

// NewBatch creates a batch with vectors of the given types.
func NewBatch(types []Type) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(types))}
	for i, t := range types {
		b.Vecs[i] = New(t, BatchSize)
	}
	return b
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// RowCount returns the logical number of rows: the selection length when a
// selection vector is attached, the physical length otherwise.
func (b *Batch) RowCount() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Len()
}

// Reset truncates all vectors and clears row-identity metadata.
func (b *Batch) Reset() {
	for _, v := range b.Vecs {
		v.Reset()
	}
	b.BaseRow = 0
	b.Contiguous = false
	b.Sel = nil
}

// Types returns the column types of the batch.
func (b *Batch) Types() []Type {
	ts := make([]Type, len(b.Vecs))
	for i, v := range b.Vecs {
		ts[i] = v.Typ
	}
	return ts
}

// Row extracts row i as boxed values (test and display helper).
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Vecs))
	for c, v := range b.Vecs {
		out[c] = v.Value(i)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
