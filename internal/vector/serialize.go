package vector

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary vector codec. The write-ahead log's data records and the executor's
// spill files both serialize whole column vectors; this is their shared
// little-endian format:
//
//	typ      uint8
//	n        uint32
//	nullbits uint8 (0 = no mask, 1 = bitmap of (n+7)/8 bytes follows values)
//	values   type-dependent (fixed 8 bytes for Int64/Date/Float64, bit-packed
//	         for Bool, u32-length-prefixed bytes for String)
//	nulls    optional bitmap
//
// The codec appends to a caller-provided buffer so spill writers and the WAL
// reuse one scratch buffer across records.

// ByteSize estimates the in-memory footprint of the vector's payload: the
// capacity-backed typed slice plus string contents and the null mask. Spill
// budgets and the segment cache charge vectors by this number.
func (v *Vector) ByteSize() int64 {
	var b int64
	switch v.Typ {
	case Int64, Date:
		b = 8 * int64(cap(v.I64))
	case Float64:
		b = 8 * int64(cap(v.F64))
	case String:
		b = 16 * int64(cap(v.Str))
		for _, s := range v.Str {
			b += int64(len(s))
		}
	case Bool:
		b = int64(cap(v.B))
	}
	if v.Nulls != nil {
		b += int64(cap(v.Nulls))
	}
	return b
}

// AppendBinary serializes the vector onto buf and returns the extended
// buffer.
func (v *Vector) AppendBinary(buf []byte) []byte {
	n := v.Len()
	buf = append(buf, byte(v.Typ))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	hasNulls := v.HasNulls()
	if hasNulls {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	switch v.Typ {
	case Int64, Date:
		for _, x := range v.I64[:n] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		}
	case Float64:
		for _, x := range v.F64[:n] {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	case String:
		for _, s := range v.Str[:n] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		}
	case Bool:
		buf = appendBitmapBools(buf, v.B[:n])
	}
	if hasNulls {
		buf = appendBitmapBools(buf, v.Nulls[:n])
	}
	return buf
}

// appendBitmapBools bit-packs a bool slice, LSB-first.
func appendBitmapBools(buf []byte, bs []bool) []byte {
	nb := (len(bs) + 7) / 8
	start := len(buf)
	for i := 0; i < nb; i++ {
		buf = append(buf, 0)
	}
	for i, b := range bs {
		if b {
			buf[start+i>>3] |= 1 << (i & 7)
		}
	}
	return buf
}

// DecodeVector decodes one vector from data, returning it and the number of
// bytes consumed.
func DecodeVector(data []byte) (*Vector, int, error) {
	if len(data) < 6 {
		return nil, 0, fmt.Errorf("vector: truncated header")
	}
	typ := Type(data[0])
	if typ > Date {
		return nil, 0, fmt.Errorf("vector: unknown type tag %d", data[0])
	}
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	hasNulls := data[5] == 1
	pos := 6
	v := NewLen(typ, n)
	switch typ {
	case Int64, Date:
		if len(data) < pos+8*n {
			return nil, 0, fmt.Errorf("vector: truncated int payload")
		}
		for i := 0; i < n; i++ {
			v.I64[i] = int64(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
	case Float64:
		if len(data) < pos+8*n {
			return nil, 0, fmt.Errorf("vector: truncated float payload")
		}
		for i := 0; i < n; i++ {
			v.F64[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		}
	case String:
		for i := 0; i < n; i++ {
			if len(data) < pos+4 {
				return nil, 0, fmt.Errorf("vector: truncated string length")
			}
			ln := int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			if ln > len(data)-pos {
				return nil, 0, fmt.Errorf("vector: truncated string payload")
			}
			v.Str[i] = string(data[pos : pos+ln])
			pos += ln
		}
	case Bool:
		nb := (n + 7) / 8
		if len(data) < pos+nb {
			return nil, 0, fmt.Errorf("vector: truncated bool payload")
		}
		for i := 0; i < n; i++ {
			v.B[i] = data[pos+i>>3]&(1<<(i&7)) != 0
		}
		pos += nb
	}
	if hasNulls {
		nb := (n + 7) / 8
		if len(data) < pos+nb {
			return nil, 0, fmt.Errorf("vector: truncated null mask")
		}
		v.Nulls = make([]bool, n)
		for i := 0; i < n; i++ {
			v.Nulls[i] = data[pos+i>>3]&(1<<(i&7)) != 0
		}
		pos += nb
	}
	return v, pos, nil
}

// AppendColumnsBinary serializes a list of equal-length vectors (one
// record's columns) onto buf.
func AppendColumnsBinary(buf []byte, cols []*Vector) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cols)))
	for _, v := range cols {
		buf = v.AppendBinary(buf)
	}
	return buf
}

// DecodeColumns decodes a column list serialized by AppendColumnsBinary,
// returning the vectors and bytes consumed.
func DecodeColumns(data []byte) ([]*Vector, int, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("vector: truncated column count")
	}
	nc := int(binary.LittleEndian.Uint32(data))
	if nc > 1<<16 {
		return nil, 0, fmt.Errorf("vector: implausible column count %d", nc)
	}
	pos := 4
	cols := make([]*Vector, nc)
	for i := 0; i < nc; i++ {
		v, n, err := DecodeVector(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		cols[i] = v
		pos += n
	}
	return cols, pos, nil
}

// AppendValueBinary serializes one boxed value (used for SMA min/max in
// segment file headers).
func AppendValueBinary(buf []byte, val Value) []byte {
	buf = append(buf, byte(val.Typ))
	if val.Null {
		return append(buf, 1)
	}
	buf = append(buf, 0)
	switch val.Typ {
	case Int64, Date:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(val.I64))
	case Float64:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(val.F64))
	case String:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val.Str)))
		buf = append(buf, val.Str...)
	case Bool:
		if val.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeValue decodes one boxed value, returning it and the bytes consumed.
func DecodeValue(data []byte) (Value, int, error) {
	if len(data) < 2 {
		return Value{}, 0, fmt.Errorf("vector: truncated value")
	}
	val := Value{Typ: Type(data[0])}
	if val.Typ > Date {
		return Value{}, 0, fmt.Errorf("vector: unknown value type tag %d", data[0])
	}
	if data[1] == 1 {
		val.Null = true
		return val, 2, nil
	}
	pos := 2
	switch val.Typ {
	case Int64, Date:
		if len(data) < pos+8 {
			return Value{}, 0, fmt.Errorf("vector: truncated value payload")
		}
		val.I64 = int64(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
	case Float64:
		if len(data) < pos+8 {
			return Value{}, 0, fmt.Errorf("vector: truncated value payload")
		}
		val.F64 = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
	case String:
		if len(data) < pos+4 {
			return Value{}, 0, fmt.Errorf("vector: truncated value payload")
		}
		ln := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if ln > len(data)-pos {
			return Value{}, 0, fmt.Errorf("vector: truncated value payload")
		}
		val.Str = string(data[pos : pos+ln])
		pos += ln
	case Bool:
		if len(data) < pos+1 {
			return Value{}, 0, fmt.Errorf("vector: truncated value payload")
		}
		val.B = data[pos] == 1
		pos++
	}
	return val, pos, nil
}
