package patchindex

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"patchindex/internal/discovery"
	"patchindex/internal/vector"
)

// TestPaperDiscoveryQueryEndToEnd runs the *exact* SQL-level NUC discovery
// query of Section IV through the engine (left outer join of the duplicated
// values back onto the table, NULLs included via the IS NULL disjunct) and
// checks that it returns precisely the tuple identifiers that the library's
// hash-based discovery computes.
func TestPaperDiscoveryQueryEndToEnd(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE tab (tid BIGINT, c BIGINT)")
	vals := []vector.Value{
		vector.IntValue(3), vector.IntValue(1), vector.IntValue(3),
		vector.IntValue(6), vector.IntValue(8), vector.NullValue(vector.Int64),
		vector.IntValue(2), vector.IntValue(9), vector.IntValue(6),
	}
	tid := vector.New(vector.Int64, len(vals))
	c := vector.New(vector.Int64, len(vals))
	for i, v := range vals {
		tid.AppendInt64(int64(i))
		if err := c.AppendValue(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.LoadColumns("tab", 0, []*vector.Vector{tid, c}); err != nil {
		t.Fatal(err)
	}

	// The verbatim query from Section IV of the paper.
	q := discovery.NUCDiscoverySQL("tab", "c")
	res := mustExec(t, e, q)
	got := make([]uint64, 0, len(res.Rows))
	for _, r := range res.Rows {
		got = append(got, uint64(r[0].I64))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })

	// Reference: the library's hash-based discovery over the same column.
	tbl, err := e.Catalog().Table("tab")
	if err != nil {
		t.Fatal(err)
	}
	want := discovery.DiscoverNUC(tbl.Partition(0).Column(1)).Patches
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("SQL discovery = %v, hash discovery = %v", got, want)
	}
	// Sanity: duplicates of 3 and 6 plus the NULL row.
	if fmt.Sprint(got) != "[0 2 3 5 8]" {
		t.Errorf("patches = %v, want [0 2 3 5 8]", got)
	}
}

func TestLeftOuterJoinSemantics(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE l (k BIGINT, v VARCHAR)")
	mustExec(t, e, "INSERT INTO l VALUES (1, 'a'), (2, 'b'), (NULL, 'n')")
	mustExec(t, e, "CREATE TABLE r (k BIGINT, w VARCHAR)")
	mustExec(t, e, "INSERT INTO r VALUES (2, 'x'), (2, 'y'), (3, 'z')")

	res := mustExec(t, e, "SELECT l.v, r.w FROM l LEFT OUTER JOIN r ON l.k = r.k ORDER BY v")
	// a -> NULL; b -> x and y; NULL key row n -> NULL.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "a" || !res.Rows[0][1].Null {
		t.Errorf("unmatched row = %v", res.Rows[0])
	}
	if res.Rows[1][1].Null || res.Rows[2][1].Null {
		t.Errorf("matched rows = %v %v", res.Rows[1], res.Rows[2])
	}
	if res.Rows[3][0].Str != "n" || !res.Rows[3][1].Null {
		t.Errorf("NULL-key row = %v", res.Rows[3])
	}
	// LEFT JOIN (without OUTER) parses identically.
	res2 := mustExec(t, e, "SELECT COUNT(*) FROM l LEFT JOIN r ON l.k = r.k")
	if res2.Rows[0][0].I64 != 4 {
		t.Errorf("LEFT JOIN count = %v", res2.Rows[0][0])
	}
	// Plain inner join drops unmatched and NULL-key rows.
	res3 := mustExec(t, e, "SELECT COUNT(*) FROM l JOIN r ON l.k = r.k")
	if res3.Rows[0][0].I64 != 2 {
		t.Errorf("inner count = %v", res3.Rows[0][0])
	}
}

func TestDerivedTableBasics(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, `SELECT d.dept_id, d.total FROM
		(SELECT dept_id, SUM(salary) AS total FROM emp GROUP BY dept_id) d
		WHERE d.total > 200 ORDER BY dept_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I64 != 1 || res.Rows[0][1].F64 != 280.0 {
		t.Errorf("row = %v", res.Rows[0])
	}
	// Derived tables require an alias.
	if _, err := e.Exec("SELECT dept_id FROM (SELECT dept_id FROM emp)"); err == nil {
		t.Error("missing derived-table alias must fail")
	}
	// Derived table joined with a base table.
	res = mustExec(t, e, `SELECT dname FROM dept
		JOIN (SELECT dept_id FROM emp GROUP BY dept_id HAVING COUNT(*) > 2) big
		ON dept.id = big.dept_id`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "eng" {
		t.Errorf("join with derived table = %v", res.Rows)
	}
}

// TestOuterJoinNotRewritten: the PatchIndex join rewrite must not fire for
// outer joins (splitting the preserved side would duplicate unmatched rows).
func TestOuterJoinNotRewritten(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE dim (pk BIGINT, lbl VARCHAR) SORTKEY pk")
	mustExec(t, e, "INSERT INTO dim VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	mustExec(t, e, "CREATE TABLE fact (fk BIGINT)")
	mustExec(t, e, "INSERT INTO fact VALUES (1), (1), (2), (9)")
	mustExec(t, e, "CREATE PATCHINDEX ON fact(fk) SORTED THRESHOLD 0.5")

	exp := mustExec(t, e, "EXPLAIN SELECT COUNT(*) FROM dim LEFT OUTER JOIN fact ON dim.pk = fact.fk")
	if msg := exp.Message; strings.Contains(msg, "MergeJoin") {
		t.Errorf("outer join must not be rewritten:\n%s", msg)
	}
	res := mustExec(t, e, "SELECT COUNT(*) FROM dim LEFT OUTER JOIN fact ON dim.pk = fact.fk")
	// 1 matches twice, 2 once, 3 unmatched -> 2+1+1 = 4 rows.
	if res.Rows[0][0].I64 != 4 {
		t.Errorf("outer join count = %v", res.Rows[0][0])
	}
}
