package patchindex

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"patchindex/internal/patch"
)

// TestParallelDifferential runs every interesting query shape serially
// (Parallelism=1) and in parallel (Parallelism=4 and 8) over the same data
// and requires identical results. Ordered queries and aggregations must match
// exactly — the exchange merge is deterministic for them; bare projections
// have no defined order, so those are compared as sorted multisets.
func TestParallelDifferential(t *testing.T) {
	seeds := []int64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			parts := 2 + rng.Intn(4)
			n := 4000 + rng.Intn(8000)
			e, err := New(Config{DefaultPartitions: parts})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { e.Close() })
			loadExceptionTable(t, e, "data", n, parts, 0.1, seed*3)
			mustExec(t, e, "CREATE PATCHINDEX ON data(u) UNIQUE THRESHOLD 1.0 FORCE")
			mustExec(t, e, "CREATE PATCHINDEX ON data(s) SORTED THRESHOLD 1.0 FORCE")

			lo := rng.Int63n(int64(n))
			hi := lo + rng.Int63n(int64(n)/2)
			ordered := []string{
				"SELECT COUNT(*) FROM data",
				"SELECT COUNT(DISTINCT u) FROM data",
				fmt.Sprintf("SELECT COUNT(DISTINCT u) FROM data WHERE s >= %d AND s < %d", lo, hi),
				fmt.Sprintf("SELECT MIN(s), MAX(s), COUNT(s) FROM data WHERE u > %d", lo),
				fmt.Sprintf("SELECT s FROM data WHERE s >= %d AND s < %d ORDER BY s LIMIT 100", lo, hi),
				"SELECT s FROM data ORDER BY s LIMIT 500",
				// GROUP BY: group emission order must be deterministic too
				// (ParallelAgg merges partials in child-index order).
				fmt.Sprintf("SELECT payload, COUNT(*), SUM(u) FROM data WHERE s < %d GROUP BY payload", hi),
				"SELECT payload, MIN(s), MAX(s) FROM data GROUP BY payload",
			}
			unordered := []string{
				fmt.Sprintf("SELECT u FROM data WHERE s >= %d AND s < %d", lo, hi),
				fmt.Sprintf("SELECT u, s FROM data WHERE payload > %d", rng.Intn(500)),
			}

			render := func(res *Result) string { return fmt.Sprint(res.Rows) }
			renderSorted := func(res *Result) string {
				rows := make([]string, len(res.Rows))
				for i, r := range res.Rows {
					rows[i] = fmt.Sprint(r)
				}
				sort.Strings(rows)
				return strings.Join(rows, ";")
			}

			check := func(q string, show func(*Result) string) {
				t.Helper()
				var ref string
				for _, p := range []int{1, 4, 8} {
					res, err := e.ExecWith(q, ExecOptions{Parallelism: p})
					if err != nil {
						t.Fatalf("%s [parallelism=%d]: %v", q, p, err)
					}
					got := show(res)
					if p == 1 {
						ref = got
						continue
					}
					if got != ref {
						t.Fatalf("%s: parallelism=%d disagrees with serial\n  ref: %.200s\n  got: %.200s",
							q, p, ref, got)
					}
				}
			}
			for _, q := range ordered {
				check(q, render)
			}
			for _, q := range unordered {
				check(q, renderSorted)
			}
		})
	}
}

var workerLineRe = regexp.MustCompile(`\[worker (\d+)\] \(morsels=(\d+) rows=(\d+) batches=(\d+)`)
var opRowsRe = regexp.MustCompile(`rows=(\d+)`)

// TestParallelExplainAnalyzeWorkerStats asserts the observability acceptance
// criterion: a parallel plan's EXPLAIN ANALYZE carries per-worker lines whose
// row counts sum to the exchange's merged rows, and the trace of the same
// execution carries one worker[i] span per worker with identical counters.
func TestParallelExplainAnalyzeWorkerStats(t *testing.T) {
	e, err := New(Config{DefaultPartitions: 4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	loadExceptionTable(t, e, "data", 20000, 4, 0.05, 99)

	res, err := e.ExecWith("EXPLAIN ANALYZE SELECT u FROM data WHERE payload >= 0", ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "Exchange(") {
		t.Fatalf("parallel plan has no Exchange:\n%s", res.Message)
	}

	// Sum worker rows under the Exchange header line and compare with the
	// exchange's own rows= figure.
	lines := strings.Split(res.Message, "\n")
	var exchangeRows, workerRows int64
	var workerLines int
	for _, ln := range lines {
		if strings.Contains(ln, "Exchange(") {
			m := opRowsRe.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("no rows= on exchange line %q", ln)
			}
			fmt.Sscanf(m[1], "%d", &exchangeRows)
		}
		if m := workerLineRe.FindStringSubmatch(ln); m != nil {
			var r int64
			fmt.Sscanf(m[3], "%d", &r)
			workerRows += r
			workerLines++
		}
	}
	if workerLines == 0 {
		t.Fatalf("no [worker N] lines in parallel EXPLAIN ANALYZE:\n%s", res.Message)
	}
	if workerRows != exchangeRows {
		t.Fatalf("worker rows sum %d != exchange rows %d\n%s", workerRows, exchangeRows, res.Message)
	}

	// The trace of the same execution must carry matching worker[i] spans.
	tr := e.Tracer().Get(res.TraceID)
	if tr == nil || !tr.Sampled {
		t.Fatalf("no sampled trace for %d", res.TraceID)
	}
	var spanWorkers int
	var spanRows int64
	for _, sp := range tr.Spans {
		if !strings.HasPrefix(sp.Name, "worker[") {
			continue
		}
		spanWorkers++
		parent := tr.Spans[sp.Parent]
		if !strings.HasPrefix(parent.Name, "Exchange(") {
			t.Fatalf("worker span %q parented under %q", sp.Name, parent.Name)
		}
		for _, kv := range sp.Attrs {
			if kv.Key == "rows" {
				spanRows += kv.Value
			}
		}
	}
	if spanWorkers != workerLines {
		t.Fatalf("trace has %d worker spans, EXPLAIN ANALYZE has %d worker lines", spanWorkers, workerLines)
	}
	if spanRows != exchangeRows {
		t.Fatalf("trace worker rows sum %d != exchange rows %d", spanRows, exchangeRows)
	}
}

// TestParallelAggExplainAnalyze asserts the ParallelAgg path is chosen for a
// parallel GROUP BY plan and renders its worker stats.
func TestParallelAggExplainAnalyze(t *testing.T) {
	e, err := New(Config{DefaultPartitions: 4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	loadExceptionTable(t, e, "data", 20000, 4, 0.05, 7)

	res := mustExec(t, e, "EXPLAIN ANALYZE SELECT payload, COUNT(*) FROM data GROUP BY payload")
	if !strings.Contains(res.Message, "ParallelAgg(") {
		t.Fatalf("parallel GROUP BY did not use ParallelAgg:\n%s", res.Message)
	}
	if !workerLineRe.MatchString(res.Message) {
		t.Fatalf("no worker lines under ParallelAgg:\n%s", res.Message)
	}
}

var timeFigureRe = regexp.MustCompile(`time=[^ )]+`)

// TestParallelSerialPlanUnchanged pins the acceptance criterion that
// Parallelism=1 produces the same physical plan as the engine default
// (serial): no Exchange, no ParallelAgg, and — modulo measured wall times —
// byte-identical EXPLAIN ANALYZE output.
func TestParallelSerialPlanUnchanged(t *testing.T) {
	e := newTestEngine(t)
	loadExceptionTable(t, e, "data", 5000, 3, 0.05, 5)
	execTrailerRe := regexp.MustCompile(`rows in \S+`)
	strip := func(s string) string {
		return execTrailerRe.ReplaceAllString(timeFigureRe.ReplaceAllString(s, "time=X"), "rows in X")
	}
	for _, q := range []string{
		"EXPLAIN ANALYZE SELECT u FROM data WHERE payload > 10",
		"EXPLAIN ANALYZE SELECT payload, COUNT(*) FROM data GROUP BY payload",
		"EXPLAIN ANALYZE SELECT s FROM data ORDER BY s LIMIT 10",
	} {
		def := mustExec(t, e, q).Message
		one, err := e.ExecWith(q, ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if strip(one.Message) != strip(def) {
			t.Fatalf("%s: Parallelism=1 plan differs from default\n default:\n%s\n p=1:\n%s", q, def, one.Message)
		}
		if strings.Contains(def, "Exchange(") || strings.Contains(def, "ParallelAgg(") ||
			strings.Contains(def, "[worker") {
			t.Fatalf("%s: serial plan contains a parallel operator:\n%s", q, def)
		}
	}
}

// TestParallelQueryCancellation cancels a parallel query mid-flight; the
// statement must return the context error without leaking workers (the -race
// run and the engine Close in cleanup would catch stragglers).
func TestParallelQueryCancellation(t *testing.T) {
	e, err := New(Config{DefaultPartitions: 4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	loadExceptionTable(t, e, "data", 50000, 4, 0.05, 31)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every worker must stop within one batch
	_, err = e.ExecWithContext(ctx, "SELECT COUNT(DISTINCT u) FROM data", ExecOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelMixedWorkloadStress mixes parallel SELECTs with concurrent
// INSERTs and CREATE PATCHINDEX under the engine's latch contract. Run under
// -race in CI; here it also sanity-checks that every query either succeeds or
// fails with a latch/cancellation-free error.
func TestParallelMixedWorkloadStress(t *testing.T) {
	e, err := New(Config{DefaultPartitions: 4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	loadExceptionTable(t, e, "data", 20000, 4, 0.1, 17)
	mustExec(t, e, "CREATE TABLE side (v BIGINT)")

	queries := []string{
		"SELECT COUNT(DISTINCT u) FROM data",
		"SELECT payload, COUNT(*) FROM data GROUP BY payload",
		"SELECT s FROM data ORDER BY s LIMIT 100",
		"SELECT COUNT(*) FROM data WHERE u > 5000",
	}
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch {
				case w == 0 && r%3 == 0:
					if _, err := e.Exec(fmt.Sprintf("INSERT INTO side VALUES (%d)", r)); err != nil {
						t.Errorf("insert: %v", err)
					}
				case w == 1 && r%7 == 3:
					// Rebuilding the index takes the table write latch while
					// parallel SELECTs hold read latches.
					if _, err := e.Exec("CREATE PATCHINDEX ON data(u) UNIQUE THRESHOLD 1.0 FORCE"); err != nil &&
						!strings.Contains(err.Error(), "already exists") {
						t.Errorf("create patchindex: %v", err)
					}
				default:
					q := queries[(w*rounds+r)%len(queries)]
					if _, err := e.Exec(q); err != nil {
						t.Errorf("%s: %v", q, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParallelDiscoveryMatchesSerial builds the same PatchIndex serially and
// in parallel and requires identical patch sets per partition — parallel NUC
// discovery merges per-partition counts into the same global duplicate view.
func TestParallelDiscoveryMatchesSerial(t *testing.T) {
	for _, c := range []patch.Constraint{patch.NearlyUnique, patch.NearlySorted} {
		col := map[patch.Constraint]string{patch.NearlyUnique: "u", patch.NearlySorted: "s"}[c]

		build := func(par int) *patch.Index {
			t.Helper()
			eng, err := New(Config{DefaultPartitions: 4, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { eng.Close() })
			loadExceptionTable(t, eng, "data", 30000, 4, 0.1, 23)
			kw := map[patch.Constraint]string{patch.NearlyUnique: "UNIQUE", patch.NearlySorted: "SORTED"}[c]
			mustExec(t, eng, fmt.Sprintf("CREATE PATCHINDEX ON data(%s) %s THRESHOLD 1.0 FORCE", col, kw))
			ix := eng.Catalog().IndexFor("data", col, c)
			if ix == nil {
				t.Fatalf("index data.%s not in catalog", col)
			}
			return ix
		}
		serial, par := build(1), build(8)
		if serial.Cardinality() != par.Cardinality() {
			t.Fatalf("%v: serial |P|=%d parallel |P|=%d", c, serial.Cardinality(), par.Cardinality())
		}
		for p := 0; p < serial.NumPartitions(); p++ {
			a, b := serial.Partition(p), par.Partition(p)
			ia, ib := a.Iter(0), b.Iter(0)
			for ia.Valid() || ib.Valid() {
				if ia.Valid() != ib.Valid() || ia.Row() != ib.Row() {
					t.Fatalf("%v: partition %d patch sets differ", c, p)
				}
				ia.Next()
				ib.Next()
			}
		}
	}
}

// TestParallelInsertVisibility: rows inserted before a parallel query are all
// seen by it (the latch contract serializes scans against appends).
func TestParallelInsertVisibility(t *testing.T) {
	e, err := New(Config{DefaultPartitions: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	mustExec(t, e, "CREATE TABLE t (v BIGINT)")
	total := 0
	for i := 0; i < 10; i++ {
		vals := make([]string, 0, 50)
		for j := 0; j < 50; j++ {
			vals = append(vals, fmt.Sprintf("(%d)", i*50+j))
		}
		mustExec(t, e, "INSERT INTO t VALUES "+strings.Join(vals, ", "))
		total += 50
		res := mustExec(t, e, "SELECT COUNT(*) FROM t")
		if got := res.Rows[0][0].I64; got != int64(total) {
			t.Fatalf("round %d: COUNT(*) = %d, want %d", i, got, total)
		}
	}
}
