package patchindex

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"
)

var timeRe = regexp.MustCompile(`time=([^ )]+)`)
var opNameRe = regexp.MustCompile(`^(\s*)(\S+) \(`)

// TestTraceMatchesExplainAnalyze asserts the acceptance criterion that a
// traced query's operator span durations equal the actuals EXPLAIN ANALYZE
// reports: both are rendered from the same OpStats.
func TestTraceMatchesExplainAnalyze(t *testing.T) {
	e := newTestEngine(t)
	loadExceptionTable(t, e, "data", 20000, 4, 0.05, 42)
	mustExec(t, e, "CREATE PATCHINDEX ON data(u) UNIQUE THRESHOLD 0.5")

	res, err := e.ExecWith("EXPLAIN ANALYZE SELECT COUNT(DISTINCT u) FROM data", ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("forced trace did not assign a trace id")
	}
	tr := e.Tracer().Get(res.TraceID)
	if tr == nil {
		t.Fatalf("trace %d not in history ring", res.TraceID)
	}
	if !tr.Sampled {
		t.Fatal("forced trace should carry a span tree")
	}

	// Operator spans are recorded after the "execute" phase span, in the
	// same pre-order FormatStats prints.
	execID := -1
	for _, sp := range tr.Spans {
		if sp.Name == "execute" {
			execID = sp.ID
			break
		}
	}
	if execID < 0 {
		t.Fatalf("no execute span in %+v", tr.Spans)
	}
	ops := tr.Spans[execID+1:]

	// Drop the "Execution: N rows in ..." trailer; the remaining lines are
	// the operator tree, one line per operator.
	lines := strings.Split(strings.TrimRight(res.Message, "\n"), "\n")
	for len(lines) > 0 && !opNameRe.MatchString(lines[len(lines)-1]) {
		lines = lines[:len(lines)-1]
	}
	if len(lines) != len(ops) {
		t.Fatalf("EXPLAIN ANALYZE has %d operators, trace has %d spans:\n%s\nspans: %+v",
			len(lines), len(ops), res.Message, ops)
	}
	for i, line := range lines {
		nm := opNameRe.FindStringSubmatch(line)
		if nm == nil {
			t.Fatalf("cannot parse operator line %q", line)
		}
		if ops[i].Name != nm[2] {
			t.Errorf("line %d: EXPLAIN ANALYZE operator %q, trace span %q", i, nm[2], ops[i].Name)
		}
		tm := timeRe.FindStringSubmatch(line)
		if tm == nil {
			t.Fatalf("no time= in line %q", line)
		}
		want, err := time.ParseDuration(tm[1])
		if err != nil {
			t.Fatalf("bad duration %q in line %q: %v", tm[1], line, err)
		}
		got := time.Duration(ops[i].DurNS).Round(time.Microsecond)
		if got != want {
			t.Errorf("line %d (%s): EXPLAIN ANALYZE time=%s, trace span %s", i, ops[i].Name, want, got)
		}
	}
	// The rewrite fired, so the trace must carry patch-hit telemetry.
	if !strings.Contains(res.Message, "patch_hits=") {
		t.Fatalf("expected PatchSelect in plan:\n%s", res.Message)
	}
	if tr.PatchHits <= 0 {
		t.Errorf("trace patch hits = %d, want > 0", tr.PatchHits)
	}
}

func TestForcedTraceViaExecOptions(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE kv (k BIGINT, v BIGINT)")
	mustExec(t, e, "INSERT INTO kv VALUES (1, 10), (2, 20)")

	// Tracer starts disabled; an untraced statement leaves no history.
	if _, err := e.Exec("SELECT * FROM kv"); err != nil {
		t.Fatal(err)
	}
	if got := e.Tracer().Recent(10); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d traces", len(got))
	}

	res, err := e.ExecWith("SELECT k FROM kv WHERE v > 15", ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := e.Tracer().Get(res.TraceID)
	if tr == nil {
		t.Fatalf("trace %d not retained", res.TraceID)
	}
	if tr.Rows != 1 || tr.SQL != "SELECT k FROM kv WHERE v > 15" {
		t.Fatalf("trace summary wrong: %+v", tr)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, phase := range []string{"parse", "bind", "rewrite", "build", "execute"} {
		if !names[phase] {
			t.Errorf("missing %s span; have %v", phase, names)
		}
	}
	// The full trace round-trips through Chrome trace-event export.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("chrome export missing traceEvents: %v", doc)
	}
}

func TestEngineTraceSampling(t *testing.T) {
	e, err := New(Config{TraceSample: 2, TraceHistory: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, "CREATE TABLE t (x BIGINT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	for i := 0; i < 4; i++ {
		mustExec(t, e, "SELECT x FROM t")
	}
	recent := e.Tracer().Recent(100)
	// All statements (DDL included) are in the history; every 2nd is sampled.
	if len(recent) != 6 {
		t.Fatalf("history holds %d statements, want 6", len(recent))
	}
	sampled := 0
	for _, tr := range recent {
		if tr.Sampled {
			sampled++
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled = %d of 6 with TraceSample=2, want 3", sampled)
	}
}

func TestSlowQueryLogEnrichment(t *testing.T) {
	var buf bytes.Buffer
	e, err := New(Config{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, "CREATE TABLE t (x BIGINT)")
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	buf.Reset()
	res, err := e.ExecWith("SELECT x FROM t", ExecOptions{
		Trace: true, SessionID: 7, ClientAddr: "10.0.0.8:5000",
	})
	if err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, "slow query") || !strings.Contains(line, "SELECT x FROM t") {
		t.Fatalf("slow log line missing statement: %q", line)
	}
	for _, tag := range []string{"session=7", "client=10.0.0.8:5000", fmt.Sprintf("trace=%d", res.TraceID)} {
		if !strings.Contains(line, tag) {
			t.Errorf("slow log line %q missing %q", line, tag)
		}
	}

	// Library use without session/trace stays untagged.
	buf.Reset()
	mustExec(t, e, "SELECT x FROM t")
	if line := buf.String(); strings.Contains(line, "session=") || strings.Contains(line, "trace=") {
		t.Errorf("untagged statement produced tags: %q", line)
	}
}

// BenchmarkExecTraceOff measures the per-statement cost with tracing fully
// disabled (the default); compare against BenchmarkExecTraceOn for the
// tracing overhead. The disabled path is one atomic load.
func BenchmarkExecTraceOff(b *testing.B) {
	benchmarkExec(b, false)
}

func BenchmarkExecTraceOn(b *testing.B) {
	benchmarkExec(b, true)
}

func benchmarkExec(b *testing.B, trace bool) {
	e, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Exec("CREATE TABLE t (x BIGINT, y BIGINT)"); err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(fmt.Sprintf("(%d, %d)", i, i%7))
	}
	if _, err := e.Exec(sb.String()); err != nil {
		b.Fatal(err)
	}
	if trace {
		e.Tracer().SetEnabled(true)
		e.Tracer().SetSampleEvery(1)
	}
	q := "SELECT COUNT(*) FROM t WHERE y = 3"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}
