module patchindex

go 1.22
