package patchindex

import (
	"math/rand"
	"testing"

	"patchindex/internal/vector"
)

// TestAppendMaintainsIndexes: queries through incrementally maintained
// indexes must match a freshly re-discovered baseline after appends.
func TestAppendMaintainsIndexes(t *testing.T) {
	e := newTestEngine(t)
	uniq, _ := loadExceptionTable(t, e, "data", 10000, 2, 0.03, 5)
	mustExec(t, e, "CREATE PATCHINDEX ON data(u) UNIQUE THRESHOLD 0.5")
	mustExec(t, e, "CREATE PATCHINDEX ON data(s) SORTED THRESHOLD 0.5")

	// Append new rows: some duplicate existing u values, some break s order.
	rng := rand.New(rand.NewSource(55))
	appended := make([]int64, 0, 800)
	for part := 0; part < 2; part++ {
		u := vector.New(vector.Int64, 400)
		s := vector.New(vector.Int64, 400)
		pay := vector.New(vector.Float64, 400)
		for i := 0; i < 400; i++ {
			var v int64
			if rng.Float64() < 0.1 {
				v = uniq[rng.Intn(len(uniq))] // duplicate an existing value
			} else {
				v = int64(5_000_000 + part*10_000 + i)
			}
			u.AppendInt64(v)
			appended = append(appended, v)
			if rng.Float64() < 0.1 {
				s.AppendInt64(rng.Int63n(10_000))
			} else {
				s.AppendInt64(int64(100_000 + i))
			}
			pay.AppendFloat64(1)
		}
		if err := e.Append("data", part, []*vector.Vector{u, s, pay}); err != nil {
			t.Fatal(err)
		}
	}

	// Count distinct through the maintained index vs. the baseline plan.
	q := "SELECT COUNT(DISTINCT u) FROM data"
	withPI := mustExec(t, e, q)
	base, err := e.ExecWith(q, ExecOptions{DisablePatchRewrites: true})
	if err != nil {
		t.Fatal(err)
	}
	want := distinctCount(append(append([]int64{}, uniq...), appended...))
	if withPI.Rows[0][0].I64 != want || base.Rows[0][0].I64 != want {
		t.Errorf("count distinct: withPI=%d base=%d want=%d",
			withPI.Rows[0][0].I64, base.Rows[0][0].I64, want)
	}

	// Sort through the maintained NSC index vs. baseline.
	sq := "SELECT s FROM data ORDER BY s"
	a := mustExec(t, e, sq)
	b, err := e.ExecWith(sq, ExecOptions{DisablePatchRewrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("sorted row counts: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i][0].I64 != b.Rows[i][0].I64 {
			t.Fatalf("sorted mismatch at %d: %d vs %d", i, a.Rows[i][0].I64, b.Rows[i][0].I64)
		}
	}
}

// TestAppendWithoutIndexes: Append on an unindexed table is a plain append.
func TestAppendWithoutIndexes(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE plain (v BIGINT) PARTITIONS 2")
	if err := e.Append("plain", 1, []*vector.Vector{vector.NewFromInt64([]int64{1, 2, 3})}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT COUNT(*) FROM plain")
	if res.Rows[0][0].I64 != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if err := e.Append("nosuch", 0, nil); err == nil {
		t.Error("append to unknown table must fail")
	}
}

// TestAppendMaintainerInvalidation: creating an index after appends must
// rebuild maintenance state (no stale classification).
func TestAppendMaintainerInvalidation(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (v BIGINT)")
	if err := e.Append("t", 0, []*vector.Vector{vector.NewFromInt64([]int64{1, 2, 3})}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE PATCHINDEX ON t(v) UNIQUE THRESHOLD 0.5")
	// This append must be classified against the new index.
	if err := e.Append("t", 0, []*vector.Vector{vector.NewFromInt64([]int64{2})}); err != nil {
		t.Fatal(err)
	}
	ix := e.Catalog().Index("t", "v")
	if ix.Cardinality() != 2 {
		t.Errorf("cardinality after invalidated append = %d, want 2", ix.Cardinality())
	}
	// Dropping and re-creating re-discovers from scratch: same answer.
	mustExec(t, e, "DROP PATCHINDEX ON t(v)")
	mustExec(t, e, "CREATE PATCHINDEX ON t(v) UNIQUE THRESHOLD 0.5")
	if got := e.Catalog().Index("t", "v").Cardinality(); got != 2 {
		t.Errorf("re-discovered cardinality = %d, want 2", got)
	}
}
