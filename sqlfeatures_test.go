package patchindex

import (
	"strings"
	"testing"
)

// setupEmp loads a small employees/departments schema through plain SQL.
func setupEmp(t *testing.T) *Engine {
	t.Helper()
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE dept (id BIGINT, dname VARCHAR) SORTKEY id")
	mustExec(t, e, "INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'hr')")
	mustExec(t, e, "CREATE TABLE emp (id BIGINT, name VARCHAR, dept_id BIGINT, salary DOUBLE, hired DATE)")
	mustExec(t, e, `INSERT INTO emp VALUES
		(1, 'ann',  1, 100.0, DATE '2020-01-05'),
		(2, 'bob',  1,  80.0, DATE '2020-03-01'),
		(3, 'cid',  2, 120.0, DATE '2021-06-15'),
		(4, 'dee',  2,  90.5, DATE '2019-11-30'),
		(5, NULL,   3,  70.0, NULL),
		(6, 'eve',  1, 100.0, DATE '2022-02-02')`)
	return e
}

func TestSQLWhereAndProjection(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT name, salary * 2 AS dbl FROM emp WHERE salary >= 90 AND dept_id <> 3 ORDER BY name")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[1] != "dbl" || res.Rows[0][1].F64 != 200.0 {
		t.Errorf("projection = %v", res.Rows)
	}
}

func TestSQLJoin(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, `SELECT dname, COUNT(*) AS n FROM dept JOIN emp ON dept.id = emp.dept_id
		GROUP BY dname ORDER BY dname`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "eng" || res.Rows[0][1].I64 != 3 {
		t.Errorf("eng group = %v", res.Rows[0])
	}
}

func TestSQLThreeWayJoin(t *testing.T) {
	e := setupEmp(t)
	mustExec(t, e, "CREATE TABLE loc (dept_id BIGINT, city VARCHAR)")
	mustExec(t, e, "INSERT INTO loc VALUES (1, 'berlin'), (2, 'munich')")
	res := mustExec(t, e, `SELECT emp.name, city FROM emp
		JOIN dept ON emp.dept_id = dept.id
		JOIN loc ON loc.dept_id = dept.id
		WHERE city = 'berlin' ORDER BY name`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSQLNullSemantics(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT COUNT(*) FROM emp WHERE name IS NULL")
	if res.Rows[0][0].I64 != 1 {
		t.Errorf("IS NULL count = %v", res.Rows[0][0])
	}
	res = mustExec(t, e, "SELECT COUNT(name) FROM emp")
	if res.Rows[0][0].I64 != 5 {
		t.Errorf("COUNT(col) must skip NULL: %v", res.Rows[0][0])
	}
	// Comparison with NULL is never true.
	res = mustExec(t, e, "SELECT COUNT(*) FROM emp WHERE name = 'zzz' OR name <> 'zzz'")
	if res.Rows[0][0].I64 != 5 {
		t.Errorf("three-valued logic broken: %v", res.Rows[0][0])
	}
}

func TestSQLDateLiterals(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT name FROM emp WHERE hired >= DATE '2020-01-01' AND hired < DATE '2021-01-01' ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "ann" || res.Rows[1][0].Str != "bob" {
		t.Errorf("date filter = %v", res.Rows)
	}
}

func TestSQLAggregatesMatrix(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT COUNT(*), COUNT(name), COUNT(DISTINCT dept_id), SUM(salary), MIN(salary), MAX(salary) FROM emp")
	r := res.Rows[0]
	if r[0].I64 != 6 || r[1].I64 != 5 || r[2].I64 != 3 {
		t.Errorf("counts = %v", r)
	}
	if r[3].F64 != 560.5 || r[4].F64 != 70.0 || r[5].F64 != 120.0 {
		t.Errorf("sum/min/max = %v", r)
	}
}

func TestSQLHaving(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT dept_id FROM emp GROUP BY dept_id HAVING SUM(salary) > 200 ORDER BY dept_id")
	if len(res.Rows) != 2 || res.Rows[0][0].I64 != 1 || res.Rows[1][0].I64 != 2 {
		t.Errorf("having = %v", res.Rows)
	}
}

func TestSQLDistinctMultiColumn(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT DISTINCT dept_id, salary FROM emp")
	if len(res.Rows) != 5 { // (1,100) occurs twice (ann, eve)
		t.Errorf("distinct pairs = %v", res.Rows)
	}
}

func TestSQLLimitAndOrder(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT id FROM emp ORDER BY salary DESC, id ASC LIMIT 3")
	got := []int64{res.Rows[0][0].I64, res.Rows[1][0].I64, res.Rows[2][0].I64}
	if got[0] != 3 || got[1] != 1 || got[2] != 6 {
		t.Errorf("top-3 by salary = %v", got)
	}
}

func TestSQLInsertCoercion(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE c (f DOUBLE, d DATE)")
	mustExec(t, e, "INSERT INTO c VALUES (1, 18000)") // int → double, int → date
	res := mustExec(t, e, "SELECT f, d FROM c")
	if res.Rows[0][0].F64 != 1.0 || res.Rows[0][1].I64 != 18000 {
		t.Errorf("coercion = %v", res.Rows[0])
	}
	if _, err := e.Exec("INSERT INTO c VALUES ('no', 1)"); err == nil {
		t.Error("string into double must fail")
	}
	if _, err := e.Exec("INSERT INTO c VALUES (1)"); err == nil {
		t.Error("wrong arity must fail")
	}
}

func TestSQLShowStatements(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SHOW TABLES")
	if len(res.Rows) != 2 {
		t.Errorf("tables = %v", res.Rows)
	}
	mustExec(t, e, "CREATE PATCHINDEX ON emp(id) UNIQUE THRESHOLD 0.5")
	res = mustExec(t, e, "SHOW PATCHINDEXES")
	if len(res.Rows) != 1 || res.Rows[0][1].Str != "id" {
		t.Errorf("patchindexes = %v", res.Rows)
	}
	if s := res.String(); !strings.Contains(s, "NEARLY UNIQUE") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestSQLDropStatements(t *testing.T) {
	e := setupEmp(t)
	mustExec(t, e, "CREATE PATCHINDEX ON emp(id) UNIQUE")
	mustExec(t, e, "DROP PATCHINDEX ON emp(id)")
	if _, err := e.Exec("DROP PATCHINDEX ON emp(id)"); err == nil {
		t.Error("double index drop must fail")
	}
	mustExec(t, e, "DROP TABLE emp")
	if _, err := e.Exec("SELECT * FROM emp"); err == nil {
		t.Error("dropped table must be gone")
	}
}

func TestSQLErrors(t *testing.T) {
	e := setupEmp(t)
	for _, q := range []string{
		"SELECT zzz FROM emp",
		"SELECT name FROM nosuch",
		"SELECT name FROM emp WHERE salary",             // non-boolean where
		"SELECT name, COUNT(*) FROM emp",                // missing group by
		"SELECT salary FROM emp GROUP BY dept_id",       // not grouped
		"CREATE TABLE emp (x BIGINT)",                   // duplicate table
		"CREATE PATCHINDEX ON emp(zzz) UNIQUE",          // unknown column
		"SELECT COUNT(*) FROM emp WHERE salary / 0 > 1", // div by zero at runtime
	} {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
	if _, err := e.Query("INSERT INTO dept VALUES (9, 'x')"); err == nil {
		t.Error("Query on a non-SELECT must fail")
	}
	if _, err := e.DrainWith("INSERT INTO dept VALUES (9, 'x')", ExecOptions{}); err == nil {
		t.Error("DrainWith on a non-SELECT must fail")
	}
}

func TestSQLThresholdRejection(t *testing.T) {
	e := setupEmp(t)
	// salary has duplicates (100.0 twice): threshold 0 must reject.
	if _, err := e.Exec("CREATE PATCHINDEX ON emp(salary) UNIQUE THRESHOLD 0.0"); err == nil {
		t.Error("threshold 0 on duplicated column must fail")
	}
	// FORCE overrides.
	mustExec(t, e, "CREATE PATCHINDEX ON emp(salary) UNIQUE THRESHOLD 0.0 FORCE")
}

func TestParallelExecutionMatchesSequential(t *testing.T) {
	mk := func(parallel bool) *Engine {
		e, err := New(Config{DefaultPartitions: 4, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		loadExceptionTable(t, e, "data", 20000, 4, 0.05, 77)
		mustExec(t, e, "CREATE PATCHINDEX ON data(u) UNIQUE THRESHOLD 0.5")
		mustExec(t, e, "CREATE PATCHINDEX ON data(s) SORTED THRESHOLD 0.5")
		return e
	}
	seq := mk(false)
	par := mk(true)
	for _, q := range []string{
		"SELECT COUNT(DISTINCT u) FROM data",
		"SELECT COUNT(*) FROM data WHERE payload > 1",
		"SELECT MIN(s), MAX(s) FROM data",
	} {
		a := mustExec(t, seq, q)
		b := mustExec(t, par, q)
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ", q)
		}
		for i := range a.Rows {
			for c := range a.Rows[i] {
				if a.Rows[i][c].String() != b.Rows[i][c].String() {
					t.Errorf("%s: row %d col %d: %v vs %v", q, i, c, a.Rows[i][c], b.Rows[i][c])
				}
			}
		}
	}
	// Ordered query under parallel mode must still come out sorted.
	res := mustExec(t, par, "SELECT s FROM data ORDER BY s LIMIT 100")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].I64 > res.Rows[i][0].I64 {
			t.Fatal("parallel ordered output not sorted")
		}
	}
}

func TestResultString(t *testing.T) {
	e := setupEmp(t)
	res := mustExec(t, e, "SELECT id, name FROM emp WHERE id <= 2 ORDER BY id")
	s := res.String()
	if !strings.Contains(s, "id") || !strings.Contains(s, "ann") || !strings.Contains(s, "(2 rows)") {
		t.Errorf("rendering:\n%s", s)
	}
	msg := mustExec(t, e, "CREATE TABLE zz (a BIGINT)")
	if !strings.Contains(msg.String(), "created") {
		t.Errorf("message rendering: %q", msg.String())
	}
}

func TestExplainBaselineVsRewritten(t *testing.T) {
	e := setupEmp(t)
	mustExec(t, e, "CREATE PATCHINDEX ON emp(id) UNIQUE")
	q := "SELECT COUNT(DISTINCT id) FROM emp"
	withPI := mustExec(t, e, "EXPLAIN "+q)
	if !strings.Contains(withPI.Message, "PatchedScan") {
		t.Errorf("rewritten plan:\n%s", withPI.Message)
	}
	base, err := e.ExecWith("EXPLAIN "+q, ExecOptions{DisablePatchRewrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(base.Message, "PatchedScan") {
		t.Errorf("baseline plan must not use patches:\n%s", base.Message)
	}
}
