package patchindex

import (
	"strings"
	"testing"
	"time"

	"patchindex/internal/tuning"
)

// newTunedEngine creates a profiling engine whose tuner uses test-scale
// guardrails; the background loop stays off, cycles are stepped via
// ALTER TUNER NOW (or RunCycle) for determinism.
func newTunedEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{
		WorkloadProfile: true,
		Tuning: tuning.Config{
			Interval:         time.Hour,
			MinTicks:         4,
			WarmupTicks:      4,
			DropIdleTicks:    8,
			DropBenefitFloor: 1e18, // idleness decides drops at test scale
			CooldownCycles:   2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// patchIndexRows returns SHOW PATCHINDEXES as key->origin, where key is
// "table.column/CONSTRAINT".
func patchIndexRows(t *testing.T, e *Engine) map[string]string {
	t.Helper()
	res := mustExec(t, e, "SHOW PATCHINDEXES")
	out := map[string]string{}
	for _, row := range res.Rows {
		out[row[0].Str+"."+row[1].Str+"/"+row[2].Str] = row[7].Str
	}
	return out
}

// TestTunerE2EConvergenceAndRollback is the PR's acceptance scenario: an
// engine with zero indexes under a skewed count-distinct workload gets its
// NUC PatchIndex auto-created within budget; EXPLAIN ANALYZE then shows the
// rewrite firing; when the workload shifts to sort queries the idle index is
// auto-dropped (and the NSC index created); ALTER TUNER ROLLBACK restores
// the pre-tuner (empty) index set.
func TestTunerE2EConvergenceAndRollback(t *testing.T) {
	e := newTunedEngine(t)
	loadExceptionTable(t, e, "data", 5000, 4, 0.05, 7)
	if got := patchIndexRows(t, e); len(got) != 0 {
		t.Fatalf("expected zero indexes at start, got %v", got)
	}

	// Phase A: skewed count-distinct workload until the tuner creates the
	// NUC index.
	created := false
	for cycle := 0; cycle < 12 && !created; cycle++ {
		for i := 0; i < 4; i++ {
			mustExec(t, e, "SELECT COUNT(DISTINCT u) FROM data")
		}
		mustExec(t, e, "ALTER TUNER NOW")
		created = patchIndexRows(t, e)["data.u/NEARLY UNIQUE"] == "auto"
	}
	if !created {
		t.Fatalf("tuner never auto-created the NUC index; journal: %+v", e.Tuner().Journal())
	}

	// The rewrite fires on the auto-created index.
	out := mustExec(t, e, "EXPLAIN ANALYZE SELECT COUNT(DISTINCT u) FROM data").Message
	if !strings.Contains(out, "PatchSelect") {
		t.Fatalf("EXPLAIN ANALYZE shows no PatchSelect after auto-create:\n%s", out)
	}

	// SHOW TUNER reports the creation.
	st := e.Tuner().Status()
	if st.Creates < 1 || st.AutoLive < 1 {
		t.Fatalf("tuner status inconsistent after create: %+v", st)
	}

	// Phase B: the workload shifts to sort queries; the idle NUC index is
	// dropped and the NSC index created.
	uDropped, sCreated := false, false
	for cycle := 0; cycle < 24 && !(uDropped && sCreated); cycle++ {
		for i := 0; i < 4; i++ {
			mustExec(t, e, "SELECT s FROM data ORDER BY s")
		}
		mustExec(t, e, "ALTER TUNER NOW")
		rows := patchIndexRows(t, e)
		_, hasU := rows["data.u/NEARLY UNIQUE"]
		uDropped = !hasU
		sCreated = rows["data.s/NEARLY SORTED"] == "auto"
	}
	if !uDropped || !sCreated {
		t.Fatalf("workload shift did not converge (uDropped=%v sCreated=%v); indexes %v journal %+v",
			uDropped, sCreated, patchIndexRows(t, e), e.Tuner().Journal())
	}

	// Rollback restores the pre-tuner index set (empty).
	mustExec(t, e, "ALTER TUNER ROLLBACK")
	if got := patchIndexRows(t, e); len(got) != 0 {
		t.Fatalf("rollback left indexes: %v", got)
	}
	if st := e.Tuner().Status(); st.Rollbacks != 1 {
		t.Fatalf("rollback not counted: %+v", st)
	}
}

// TestTunerDifferentialIdentical: at every step of a shifting workload the
// tuned engine returns byte-identical results to an untouched engine —
// auto-created and auto-dropped indexes never change query output.
func TestTunerDifferentialIdentical(t *testing.T) {
	queries := []string{
		"SELECT COUNT(DISTINCT u) FROM data",
		"SELECT u FROM data WHERE u < 100 ORDER BY u",
		"SELECT COUNT(*), SUM(s) FROM data WHERE u >= 500",
	}
	var workload []string
	for i := 0; i < 8; i++ { // distinct-heavy phase
		workload = append(workload, queries[0], queries[1])
	}
	for i := 0; i < 12; i++ { // sort-heavy phase
		workload = append(workload, "SELECT s FROM data ORDER BY s", queries[2])
	}

	plainEng, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer plainEng.Close()
	loadExceptionTable(t, plainEng, "data", 5000, 4, 0.05, 42)
	tunedEng := newTunedEngine(t)
	loadExceptionTable(t, tunedEng, "data", 5000, 4, 0.05, 42)

	for i, q := range workload {
		plain := mustExec(t, plainEng, q).String()
		tuned := mustExec(t, tunedEng, q).String()
		if plain != tuned {
			t.Fatalf("step %d query %q differs with tuner on:\n--- plain ---\n%s\n--- tuned ---\n%s",
				i, q, plain, tuned)
		}
		if i%4 == 3 {
			tunedEng.Tuner().RunCycle()
		}
	}
	// Sanity: the tuner actually acted during the run, so the differential
	// compared meaningfully different physical designs.
	if st := tunedEng.Tuner().Status(); st.Creates == 0 {
		t.Fatalf("tuner never created an index during the differential workload: %+v", st)
	}
}

// TestShowPatchindexesOriginBenefitColumns: SHOW PATCHINDEXES reports origin
// (manual vs auto), decayed benefit and last_used_tick.
func TestShowPatchindexesOriginBenefitColumns(t *testing.T) {
	e := newTunedEngine(t)
	loadExceptionTable(t, e, "data", 2000, 2, 0.05, 3)
	mustExec(t, e, "CREATE PATCHINDEX ON data(u) UNIQUE THRESHOLD 0.5")

	res := mustExec(t, e, "SHOW PATCHINDEXES")
	want := []string{"table", "column", "constraint", "kind", "patches", "rate", "bytes", "origin", "benefit", "last_used_tick"}
	if strings.Join(res.Columns, ",") != strings.Join(want, ",") {
		t.Fatalf("SHOW PATCHINDEXES columns = %v, want %v", res.Columns, want)
	}
	if len(res.Rows) != 1 || res.Rows[0][7].Str != "manual" {
		t.Fatalf("manual index origin wrong: %+v", res.Rows)
	}
	if res.Rows[0][9].I64 != 0 {
		t.Fatalf("unused index must report last_used_tick 0, got %d", res.Rows[0][9].I64)
	}

	// Use the index; benefit and last_used_tick become non-zero.
	mustExec(t, e, "SELECT COUNT(DISTINCT u) FROM data")
	res = mustExec(t, e, "SHOW PATCHINDEXES")
	if res.Rows[0][8].F64 <= 0 {
		t.Fatalf("benefit not attributed after rewrite: %+v", res.Rows[0])
	}
	if res.Rows[0][9].I64 <= 0 {
		t.Fatalf("last_used_tick not stamped after rewrite: %+v", res.Rows[0])
	}
}

// TestAlterTunerSQLSurface covers the statement surface: SHOW TUNER renders
// key/value rows, ALTER TUNER START/STOP toggle the loop, and unknown
// actions fail to parse.
func TestAlterTunerSQLSurface(t *testing.T) {
	e := newTunedEngine(t)

	res := mustExec(t, e, "SHOW TUNER")
	if len(res.Columns) != 2 || res.Columns[0] != "setting" {
		t.Fatalf("SHOW TUNER shape: %+v", res.Columns)
	}
	kv := map[string]string{}
	for _, row := range res.Rows {
		kv[row[0].Str] = row[1].Str
	}
	if kv["running"] != "false" {
		t.Fatalf("tuner should start stopped: %v", kv)
	}

	mustExec(t, e, "ALTER TUNER START")
	if !e.Tuner().Running() {
		t.Fatal("ALTER TUNER START did not start the loop")
	}
	mustExec(t, e, "ALTER TUNER STOP")
	if e.Tuner().Running() {
		t.Fatal("ALTER TUNER STOP did not stop the loop")
	}

	if _, err := e.Exec("ALTER TUNER FROBNICATE"); err == nil ||
		!strings.Contains(err.Error(), "ALTER TUNER") {
		t.Fatalf("unknown tuner action must fail with a helpful error, got %v", err)
	}
}

// TestAutoTuneConfigStartsLoop: Config.AutoTune launches the background loop
// and enables profiling; Close stops it.
func TestAutoTuneConfigStartsLoop(t *testing.T) {
	e, err := New(Config{AutoTune: true, Tuning: tuning.Config{Interval: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Tuner().Running() {
		t.Fatal("AutoTune did not start the tuner")
	}
	if !e.Profiler().Enabled() {
		t.Fatal("AutoTune must imply workload profiling")
	}
	// Let a few (cold, skipped) cycles elapse, then shut down cleanly.
	time.Sleep(10 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Tuner().Running() {
		t.Fatal("Close did not stop the tuner")
	}
}
