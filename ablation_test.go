package patchindex

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"patchindex/internal/datagen"
	"patchindex/internal/discovery"
	"patchindex/internal/exec"
	"patchindex/internal/patch"
	"patchindex/internal/vector"
)

// Ablation benchmarks for the design choices called out in DESIGN.md:
// SMA-based scan-range pruning, parallel partition scans, and the placement
// of PatchSelect on top of range-restricted scans.

// BenchmarkAblationScanRanges measures a selective range query with and
// without SMA block pruning.
func BenchmarkAblationScanRanges(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "pruning-on"
		if disable {
			name = "pruning-off"
		}
		b.Run(name, func(b *testing.B) {
			e, err := New(Config{DefaultPartitions: benchPartitions, DisableScanRanges: disable})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if _, err := e.Exec("CREATE TABLE t (v BIGINT, w BIGINT)"); err != nil {
				b.Fatal(err)
			}
			per := benchCustomRows / benchPartitions
			for p := 0; p < benchPartitions; p++ {
				v := vector.New(vector.Int64, per)
				w := vector.New(vector.Int64, per)
				for i := 0; i < per; i++ {
					v.AppendInt64(int64(p*per + i)) // globally block-clustered
					w.AppendInt64(int64(i % 97))
				}
				if err := e.LoadColumns("t", p, []*vector.Vector{v, w}); err != nil {
					b.Fatal(err)
				}
			}
			q := fmt.Sprintf("SELECT SUM(w) FROM t WHERE v >= %d AND v < %d",
				benchCustomRows/2, benchCustomRows/2+10_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.DrainWith(q, ExecOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallel measures the parallel partition exchange against
// sequential execution for a patched count-distinct.
func BenchmarkAblationParallel(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			e, err := New(Config{DefaultPartitions: benchPartitions, Parallel: parallel})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			tb, err := datagen.LoadCustom("data", benchCustomRows, benchPartitions, 0.05, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Catalog().AddTable(tb); err != nil {
				b.Fatal(err)
			}
			if _, err := e.CreatePatchIndex("data", "u", patch.NearlyUnique,
				discovery.BuildOptions{Kind: patch.Auto, Threshold: 1}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.DrainWith("SELECT COUNT(DISTINCT u) FROM data", ExecOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDiscovery isolates the two discovery algorithms (the
// index-creation building blocks of Figure 6).
func BenchmarkAblationDiscovery(b *testing.B) {
	uniqueCol := datagen.GenUniqueColumn(datagen.UniqueConfig{Rows: benchCustomRows, Rate: 0.05, Seed: 1})
	sortedCol := datagen.GenSortedColumn(datagen.SortedConfig{Rows: benchCustomRows, Rate: 0.05, Seed: 2})
	b.Run("nuc-hash-grouping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.DiscoverNUC(uniqueCol)
		}
	})
	b.Run("nsc-longest-sorted-subsequence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.DiscoverNSC(sortedCol, false)
		}
	})
}

// BenchmarkAblationPatchSelect isolates the PatchSelect operator itself —
// identifier merge (Algorithm 1) vs. bitmap probing, in both selection modes
// and at two exception rates — by draining a bare Scan→PatchSelect pipeline.
func BenchmarkAblationPatchSelect(b *testing.B) {
	for _, rate := range []float64{0.01, 0.3} {
		tb, err := datagen.LoadCustom("data", benchCustomRows, 1, rate, 0, 3)
		if err != nil {
			b.Fatal(err)
		}
		colIdx := tb.Schema().ColumnIndex("u")
		res := discovery.DiscoverNUC(tb.Partition(0).Column(colIdx))
		for _, kind := range []patch.Kind{patch.Identifier, patch.Bitmap} {
			set, err := patch.Build(kind, res.Patches, res.NumRows)
			if err != nil {
				b.Fatal(err)
			}
			for _, mode := range []exec.SelectMode{exec.ExcludePatches, exec.UsePatches} {
				b.Run(fmt.Sprintf("rate=%.0f%%/%s/%s", 100*rate, kind, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						sc, err := exec.NewScan(tb, 0, []int{colIdx}, nil)
						if err != nil {
							b.Fatal(err)
						}
						ps, err := exec.NewPatchSelect(sc, set, mode)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := exec.Drain(ps); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblationRecovery compares the two recovery designs of Section V:
// re-discovery from data (the paper's default) vs. loading materialized
// index payloads from disk (the discussed alternative).
func BenchmarkAblationRecovery(b *testing.B) {
	dir := b.TempDir()
	idxDir := filepath.Join(dir, "idx")
	if err := os.MkdirAll(idxDir, 0o755); err != nil {
		b.Fatal(err)
	}
	tb, err := datagen.LoadCustom("data", benchCustomRows, benchPartitions, 0.05, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Build + materialize once.
	ix, err := discovery.BuildIndex(tb, "u", patch.NearlyUnique,
		discovery.BuildOptions{Kind: patch.Auto, Threshold: 1})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(idxDir, "data.u.nuc.pidx")
	if err := ix.Save(path); err != nil {
		b.Fatal(err)
	}
	b.Run("rediscovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := discovery.BuildIndex(tb, "u", patch.NearlyUnique,
				discovery.BuildOptions{Kind: patch.Auto, Threshold: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := patch.Load(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}
